"""Unit tests for the disk-backed artifact store and its LRU front."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ServeError
from repro.serve.store import ArtifactStore

KEY_A = "a" * 8
KEY_B = "b" * 8
KEY_C = "c" * 8


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache", max_memory_entries=2)


class TestBasicOperations:
    def test_miss_returns_none(self, store):
        assert store.get("analysis", KEY_A) is None
        assert store.stats.misses == 1

    def test_put_then_get_hits_memory(self, store):
        store.put("analysis", KEY_A, {"value": 1})
        assert store.get("analysis", KEY_A) == {"value": 1}
        assert store.stats.memory_hits == 1
        assert store.stats.disk_hits == 0

    def test_disk_hit_after_memory_eviction(self, store):
        store.put("analysis", KEY_A, {"value": 1})
        store.clear_memory()
        assert store.get("analysis", KEY_A) == {"value": 1}
        assert store.stats.disk_hits == 1

    def test_kinds_are_namespaced(self, store):
        store.put("analysis", KEY_A, {"kind": "analysis"})
        store.put("mining", KEY_A, {"kind": "mining"})
        assert store.get("analysis", KEY_A) == {"kind": "analysis"}
        assert store.get("mining", KEY_A) == {"kind": "mining"}
        assert store.keys("analysis") == [KEY_A]
        assert store.keys("mining") == [KEY_A]

    def test_contains_and_delete(self, store):
        assert not store.contains("analysis", KEY_A)
        store.put("analysis", KEY_A, {})
        assert store.contains("analysis", KEY_A)
        assert store.delete("analysis", KEY_A)
        assert not store.contains("analysis", KEY_A)
        assert not store.delete("analysis", KEY_A)

    def test_keys_empty_without_directory(self, tmp_path):
        assert ArtifactStore(tmp_path / "never-created").keys("analysis") == []

    def test_invalid_kind_and_key_rejected(self, store):
        with pytest.raises(ServeError):
            store.path_for("", KEY_A)
        with pytest.raises(ServeError):
            store.path_for("kind/../../escape", KEY_A)
        with pytest.raises(ServeError):
            store.path_for("analysis", "NOT-HEX")

    def test_writes_are_canonical_json(self, store):
        path = store.put("analysis", KEY_A, {"b": 1, "a": 2})
        assert path.read_text(encoding="utf-8") == '{"a":2,"b":1}'

    def test_directory_layout_is_sharded_by_key_prefix(self, store):
        path = store.put("analysis", KEY_A, {})
        assert path.parent.name == KEY_A[:2]
        assert path == store.path_for("analysis", KEY_A)
        assert store.keys("analysis") == [KEY_A]

    def test_delete_increments_deletes_counter(self, store):
        store.put("analysis", KEY_A, {})
        assert store.delete("analysis", KEY_A)
        assert store.stats.deletes == 1
        assert not store.delete("analysis", KEY_A)  # nothing existed
        assert store.stats.deletes == 1
        assert store.stats.to_dict()["deletes"] == 1


class TestLRU:
    def test_capacity_evicts_oldest(self, store):
        store.put("analysis", KEY_A, {"v": "a"})
        store.put("analysis", KEY_B, {"v": "b"})
        store.put("analysis", KEY_C, {"v": "c"})  # evicts A from memory
        store.get("analysis", KEY_A)
        assert store.stats.disk_hits == 1  # A had to come from disk
        store.get("analysis", KEY_C)
        assert store.stats.memory_hits == 1

    def test_access_refreshes_recency(self, store):
        store.put("analysis", KEY_A, {"v": "a"})
        store.put("analysis", KEY_B, {"v": "b"})
        store.get("analysis", KEY_A)  # A becomes most recent
        store.put("analysis", KEY_C, {"v": "c"})  # evicts B, not A
        store.get("analysis", KEY_A)
        assert store.stats.memory_hits == 2
        store.get("analysis", KEY_B)
        assert store.stats.disk_hits == 1

    def test_zero_capacity_disables_memory(self, tmp_path):
        store = ArtifactStore(tmp_path, max_memory_entries=0)
        store.put("analysis", KEY_A, {"v": 1})
        assert store.get("analysis", KEY_A) == {"v": 1}
        assert store.stats.memory_hits == 0
        assert store.stats.disk_hits == 1

    def test_evictions_counted(self, store):
        assert store.stats.evictions == 0
        store.put("analysis", KEY_A, {"v": "a"})
        store.put("analysis", KEY_B, {"v": "b"})
        assert store.stats.evictions == 0  # capacity 2: nothing evicted yet
        store.put("analysis", KEY_C, {"v": "c"})  # evicts A
        assert store.stats.evictions == 1
        store.get("analysis", KEY_A)  # disk hit re-remembers A, evicting B
        assert store.stats.evictions == 2
        assert store.stats.to_dict()["evictions"] == 2

    def test_zero_capacity_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path, max_memory_entries=0)
        store.put("analysis", KEY_A, {"v": 1})
        store.put("analysis", KEY_B, {"v": 2})
        assert store.stats.evictions == 0

    def test_eviction_counters_under_interleaved_traffic(self, store):
        # Capacity 2.  Evictions must count only policy-driven memory drops,
        # never explicit deletes, and vice versa.
        store.put("analysis", KEY_A, {"v": "a"})  # memory: [A]
        store.put("analysis", KEY_B, {"v": "b"})  # memory: [A, B]
        store.get("analysis", KEY_A)              # memory: [B, A]
        store.put("analysis", KEY_C, {"v": "c"})  # evicts B
        assert store.stats.evictions == 1
        store.delete("analysis", KEY_A)           # a delete, not an eviction
        assert store.stats.deletes == 1
        assert store.stats.evictions == 1
        store.get("analysis", KEY_B)              # disk hit refills: [C, B]
        assert store.stats.disk_hits == 1
        assert store.stats.evictions == 1         # capacity not exceeded
        store.put("analysis", KEY_A, {"v": "a2"})  # evicts C
        assert store.stats.evictions == 2
        assert store.stats.deletes == 1
        counters = store.stats.to_dict()
        assert counters["evictions"] == 2 and counters["deletes"] == 1


class TestCorruptRecovery:
    def test_truncated_file_is_a_miss(self, store):
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        path = store.path_for("analysis", KEY_A)
        path.write_text('{"v": 1', encoding="utf-8")  # truncated JSON
        assert store.get("analysis", KEY_A) is None
        assert store.stats.corrupt_recovered == 1

    def test_corrupt_file_is_quarantined_and_slot_rewritable(self, store):
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        path = store.path_for("analysis", KEY_A)
        path.write_text("not json at all", encoding="utf-8")
        assert store.get("analysis", KEY_A) is None
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        store.put("analysis", KEY_A, {"v": 2})
        store.clear_memory()
        assert store.get("analysis", KEY_A) == {"v": 2}

    def test_non_object_root_is_a_miss(self, store):
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        store.path_for("analysis", KEY_A).write_text(json.dumps([1, 2]), encoding="utf-8")
        assert store.get("analysis", KEY_A) is None
        assert store.stats.corrupt_recovered == 1

    def test_memory_layer_shields_corrupt_disk(self, store):
        store.put("analysis", KEY_A, {"v": 1})
        store.path_for("analysis", KEY_A).write_text("garbage", encoding="utf-8")
        # Still in memory, so the corrupt disk copy is never read.
        assert store.get("analysis", KEY_A) == {"v": 1}

    def test_quarantine_collision_with_stale_corrupt_file(self, store):
        # A previous quarantine already parked a *.json.corrupt under the
        # target name; quarantining again must not wedge the slot.
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        path = store.path_for("analysis", KEY_A)
        stale = path.with_suffix(".json.corrupt")
        stale.write_text("stale quarantine", encoding="utf-8")
        path.write_text("fresh corruption", encoding="utf-8")
        assert store.get("analysis", KEY_A) is None
        assert store.stats.corrupt_recovered == 1
        assert not path.exists()
        # The newer corruption replaced the stale quarantine file.
        assert stale.read_text(encoding="utf-8") == "fresh corruption"
        store.put("analysis", KEY_A, {"v": 2})
        store.clear_memory()
        assert store.get("analysis", KEY_A) == {"v": 2}

    def test_contains_validates_through_read_path(self, store):
        # A corrupt on-disk artifact that get() would quarantine and miss
        # must not report True from contains().
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        path = store.path_for("analysis", KEY_A)
        path.write_text("garbage", encoding="utf-8")
        assert not store.contains("analysis", KEY_A)
        assert store.stats.corrupt_recovered == 1
        assert not path.exists()  # quarantined on the spot
        assert path.with_suffix(".json.corrupt").exists()

    def test_external_delete_invalidates_memory_layer(self, store, tmp_path):
        store.put("analysis", KEY_A, {"v": 1})
        # Another handle over the same directory deletes the artifact.
        other = ArtifactStore(tmp_path / "cache")
        assert other.delete("analysis", KEY_A)
        assert store.get("analysis", KEY_A) is None
        assert store.stats.misses == 1

    def test_concurrent_readers_quarantine_corrupt_artifact_exactly_once(self, store):
        # Two threads race onto the same corrupt slot: the store's lock
        # serializes the read+quarantine, so exactly one quarantine happens
        # and both readers fall through to a plain miss (the recompute path).
        store.put("analysis", KEY_A, {"v": 1})
        store.clear_memory()
        path = store.path_for("analysis", KEY_A)
        path.write_text("not json at all", encoding="utf-8")

        quarantines = []
        inner_quarantine = store._backend.quarantine
        store._backend.quarantine = lambda kind, key: (
            quarantines.append((kind, key)),
            inner_quarantine(kind, key),
        )

        barrier = threading.Barrier(2)
        outcomes: list[object] = []

        def reader() -> None:
            barrier.wait()
            outcomes.append(store.get("analysis", KEY_A))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert outcomes == [None, None]  # both fall through, neither raises
        assert quarantines == [("analysis", KEY_A)]  # exactly once
        assert store.stats.corrupt_recovered == 1
        assert store.stats.misses == 2
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
