"""Backend parity: the storage contract holds for all three backends.

Every test here runs three times (directory / sqlite / memory) through the
parametrized fixtures in ``conftest.py``.  The corrupt-payload tests inject
bad text through the backend's own ``write``, so validation and quarantine
are exercised identically regardless of how each backend stores bytes.
"""

from __future__ import annotations

import pytest

from repro.core.config import AnalysisConfig
from repro.errors import ServeError
from repro.serve.backends import (
    DirectoryBackend,
    MemoryBackend,
    SqliteBackend,
    create_backend,
)
from repro.serve.service import AnalysisService
from repro.serve.store import ArtifactStore

KEY_A = "a" * 8
KEY_B = "b" * 8
KEY_C = "c" * 8


class TestBackendContract:
    def test_read_absent_is_none(self, any_backend):
        assert any_backend.read("analysis", KEY_A) is None
        assert not any_backend.exists("analysis", KEY_A)

    def test_write_read_roundtrip_is_byte_identical(self, any_backend):
        text = '{"a":2,"b":1}'
        any_backend.write("analysis", KEY_A, text)
        assert any_backend.read("analysis", KEY_A) == text
        assert any_backend.exists("analysis", KEY_A)

    def test_rewrite_replaces(self, any_backend):
        any_backend.write("analysis", KEY_A, '{"v":1}')
        any_backend.write("analysis", KEY_A, '{"v":2}')
        assert any_backend.read("analysis", KEY_A) == '{"v":2}'

    def test_delete(self, any_backend):
        any_backend.write("analysis", KEY_A, "{}")
        assert any_backend.delete("analysis", KEY_A)
        assert not any_backend.delete("analysis", KEY_A)
        assert any_backend.read("analysis", KEY_A) is None

    def test_keys_are_kind_namespaced_and_sorted(self, any_backend):
        any_backend.write("analysis", KEY_B, "{}")
        any_backend.write("analysis", KEY_A, "{}")
        any_backend.write("mining", KEY_C, "{}")
        any_backend.write("miningindex", KEY_A, "{}")
        assert any_backend.keys("analysis") == [KEY_A, KEY_B]
        assert any_backend.keys("mining") == [KEY_C]
        assert any_backend.keys("miningindex") == [KEY_A]

    def test_entries_and_total_bytes(self, any_backend):
        any_backend.write("analysis", KEY_A, '{"v":1}')
        any_backend.write("mining", KEY_B, '{"vv":22}')
        entries = {(e.kind, e.key): e for e in any_backend.entries()}
        assert set(entries) == {("analysis", KEY_A), ("mining", KEY_B)}
        assert entries[("analysis", KEY_A)].size_bytes == len('{"v":1}')
        assert any_backend.total_bytes() == len('{"v":1}') + len('{"vv":22}')
        assert set(any_backend.scan()) == set(entries)

    def test_quarantine_removes_from_namespace(self, any_backend):
        any_backend.write("analysis", KEY_A, "not json")
        any_backend.quarantine("analysis", KEY_A)
        assert any_backend.read("analysis", KEY_A) is None
        assert any_backend.keys("analysis") == []
        # The slot is rewritable after quarantine.
        any_backend.write("analysis", KEY_A, '{"v":2}')
        assert any_backend.read("analysis", KEY_A) == '{"v":2}'

    def test_invalid_names_rejected(self, any_backend):
        with pytest.raises(ServeError):
            any_backend.write("", KEY_A, "{}")
        with pytest.raises(ServeError):
            any_backend.write("kind/../../escape", KEY_A, "{}")
        with pytest.raises(ServeError):
            any_backend.read("analysis", "NOT-HEX")


class TestStoreOverAnyBackend:
    def test_put_get_memory_then_backend(self, any_store):
        any_store.put("analysis", KEY_A, {"value": 1})
        assert any_store.get("analysis", KEY_A) == {"value": 1}
        assert any_store.stats.memory_hits == 1
        any_store.clear_memory()
        assert any_store.get("analysis", KEY_A) == {"value": 1}
        assert any_store.stats.disk_hits == 1

    def test_corrupt_backend_payload_is_quarantined_miss(self, any_store):
        any_store.backend.write("analysis", KEY_A, "not json at all")
        assert any_store.get("analysis", KEY_A) is None
        assert any_store.stats.corrupt_recovered == 1
        assert any_store.stats.misses == 1
        # Quarantine cleared the slot: a rewrite works and reads back.
        any_store.put("analysis", KEY_A, {"v": 2})
        any_store.clear_memory()
        assert any_store.get("analysis", KEY_A) == {"v": 2}

    def test_non_object_root_is_a_miss(self, any_store):
        any_store.backend.write("analysis", KEY_A, "[1, 2]")
        assert any_store.get("analysis", KEY_A) is None
        assert any_store.stats.corrupt_recovered == 1

    def test_contains_validates_through_read_path(self, any_store):
        any_store.backend.write("analysis", KEY_A, "garbage")
        assert not any_store.contains("analysis", KEY_A)
        assert any_store.stats.corrupt_recovered == 1
        assert not any_store.backend.exists("analysis", KEY_A)  # quarantined
        any_store.put("analysis", KEY_B, {"v": 1})
        assert any_store.contains("analysis", KEY_B)

    def test_deletes_and_bytes_written_counters(self, any_store):
        any_store.put("analysis", KEY_A, {"v": 1})
        assert any_store.stats.bytes_written == len('{"v":1}')
        assert any_store.delete("analysis", KEY_A)
        assert not any_store.delete("analysis", KEY_A)
        assert any_store.stats.deletes == 1
        assert any_store.stats.to_dict()["deletes"] == 1

    def test_lru_parity(self, any_store):
        any_store.put("analysis", KEY_A, {"v": "a"})
        any_store.put("analysis", KEY_B, {"v": "b"})
        any_store.put("analysis", KEY_C, {"v": "c"})  # capacity 2: evicts A
        assert any_store.stats.evictions == 1
        any_store.get("analysis", KEY_A)
        assert any_store.stats.disk_hits == 1  # A had to come from the backend


class TestServiceOverAnyBackend:
    CONFIG = AnalysisConfig(seed=11, scale=0.02, elbow_k_max=6)

    def test_served_results_identical_across_backends(self, any_backend):
        # The memory backend needs a root for corpus snapshots; create_backend
        # anchored every backend at tmp_path/cache, so it already has one.
        service = AnalysisService(ArtifactStore(backend=any_backend))
        computed = service.get_or_run(self.CONFIG)
        assert computed.source == "computed"
        again = service.get_or_run(self.CONFIG)
        assert again.source == "memory"
        # A fresh service over the *same backend* must hit durable storage.
        fresh = AnalysisService(ArtifactStore(backend=any_backend))
        reloaded = fresh.get_or_run(self.CONFIG)
        assert reloaded.source == "disk"
        assert reloaded.results == computed.results

    def test_invalidate_across_handles(self, any_backend):
        service = AnalysisService(ArtifactStore(backend=any_backend))
        service.get_or_run(self.CONFIG)
        other = AnalysisService(ArtifactStore(backend=any_backend))
        assert other.invalidate(self.CONFIG)
        assert service.get_or_run(self.CONFIG).source == "computed"


class TestBackendConstruction:
    def test_create_backend_maps_names(self, tmp_path):
        assert isinstance(create_backend("directory", tmp_path), DirectoryBackend)
        assert isinstance(create_backend("sqlite", tmp_path), SqliteBackend)
        assert isinstance(create_backend("memory", tmp_path), MemoryBackend)
        with pytest.raises(ServeError):
            create_backend("s3", tmp_path)

    def test_directory_backend_shards_by_key_prefix(self, tmp_path):
        backend = DirectoryBackend(tmp_path, shards=256)
        backend.write("analysis", "ab" + "0" * 6, "{}")
        assert (tmp_path / "ab" / ("analysis-ab" + "0" * 6 + ".json")).exists()
        assert backend.keys("analysis") == ["ab" + "0" * 6]

    def test_sharded_backend_reads_legacy_flat_files(self, tmp_path):
        # A cache warmed before sharding keeps serving: reads, probes, scans
        # and deletes fall back to the flat root/<kind>-<key>.json location.
        flat = DirectoryBackend(tmp_path, shards=0)
        flat.write("analysis", KEY_A, '{"v":1}')
        (tmp_path / ("corpus-" + "9" * 8 + ".json")).write_text("{}", encoding="utf-8")
        sharded = DirectoryBackend(tmp_path, shards=256)
        assert sharded.read("analysis", KEY_A) == '{"v":1}'
        assert sharded.exists("analysis", KEY_A)
        assert sharded.keys("analysis") == [KEY_A]
        assert [(e.kind, e.key) for e in sharded.entries()] == [("analysis", KEY_A)]
        # A rewrite lands in the sharded location and wins over the flat copy.
        sharded.write("analysis", KEY_A, '{"v":2}')
        assert sharded.read("analysis", KEY_A) == '{"v":2}'
        assert len(sharded.keys("analysis")) == 1
        # Delete removes both copies so the flat one cannot resurrect.
        assert sharded.delete("analysis", KEY_A)
        assert not sharded.exists("analysis", KEY_A)
        assert not (tmp_path / f"analysis-{KEY_A}.json").exists()

    def test_sharded_store_serves_legacy_flat_cache(self, tmp_path):
        flat_store = ArtifactStore(tmp_path, max_memory_entries=0)
        flat_store.backend.shards = 0  # simulate the pre-sharding writer
        flat_store.put("analysis", KEY_A, {"v": 1})
        upgraded = ArtifactStore(tmp_path, max_memory_entries=0)
        assert upgraded.get("analysis", KEY_A) == {"v": 1}
        assert upgraded.stats.disk_hits == 1
        assert upgraded.stats.misses == 0

    def test_corrupt_legacy_flat_file_is_quarantined(self, tmp_path):
        flat = DirectoryBackend(tmp_path, shards=0)
        flat.write("analysis", KEY_A, "not json")
        store = ArtifactStore(tmp_path, max_memory_entries=0)
        assert store.get("analysis", KEY_A) is None
        assert store.stats.corrupt_recovered == 1
        assert (tmp_path / f"analysis-{KEY_A}.json.corrupt").exists()

    def test_directory_backend_flat_layout(self, tmp_path):
        backend = DirectoryBackend(tmp_path, shards=0)
        backend.write("analysis", KEY_A, "{}")
        assert (tmp_path / f"analysis-{KEY_A}.json").exists()
        assert backend.keys("analysis") == [KEY_A]

    def test_directory_backend_rejects_bad_shards(self, tmp_path):
        with pytest.raises(ServeError):
            DirectoryBackend(tmp_path, shards=-1)
        with pytest.raises(ServeError):
            DirectoryBackend(tmp_path, shards=1000)

    def test_sqlite_backend_is_one_file(self, tmp_path):
        backend = create_backend("sqlite", tmp_path / "cache")
        backend.write("analysis", KEY_A, "{}")
        assert (tmp_path / "cache" / "artifacts.sqlite").exists()
        backend.close()

    def test_sqlite_quarantine_preserves_payload(self, tmp_path):
        backend = SqliteBackend(tmp_path / "artifacts.sqlite")
        backend.write("analysis", KEY_A, "broken payload")
        backend.quarantine("analysis", KEY_A)
        assert backend.quarantined() == [("analysis", KEY_A)]
        # A second quarantine of the same slot replaces the stale one.
        backend.write("analysis", KEY_A, "broken again")
        backend.quarantine("analysis", KEY_A)
        assert backend.quarantined() == [("analysis", KEY_A)]
        backend.close()

    def test_store_requires_root_or_backend(self):
        with pytest.raises(ServeError):
            ArtifactStore()

    def test_path_for_only_on_path_backends(self, tmp_path):
        store = ArtifactStore(backend=MemoryBackend())
        with pytest.raises(ServeError):
            store.path_for("analysis", KEY_A)
        sharded = ArtifactStore(tmp_path)
        assert sharded.path_for("analysis", KEY_A).name == f"analysis-{KEY_A}.json"


class TestLeaseContract:
    """Compute-lease parity: claim/renew/release/steal behave identically
    across every backend (all take an injectable ``now`` for determinism)."""

    def test_cold_claim_wins(self, any_backend):
        lease = any_backend.claim("analysis", KEY_A, "alpha", 10.0, now=100.0)
        assert lease is not None
        assert (lease.owner, lease.expires_at) == ("alpha", 110.0)
        assert not lease.expired(now=109.9)
        assert lease.expired(now=110.0)

    def test_live_lease_blocks_other_owners(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 10.0, now=100.0)
        assert any_backend.claim("analysis", KEY_A, "beta", 10.0, now=105.0) is None
        held = any_backend.lease("analysis", KEY_A, now=105.0)
        assert held is not None and held.owner == "alpha"

    def test_reclaim_by_live_holder_renews(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 10.0, now=100.0)
        again = any_backend.claim("analysis", KEY_A, "alpha", 10.0, now=105.0)
        assert again is not None and again.expires_at == 115.0

    def test_expired_lease_is_stolen(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 5.0, now=100.0)
        stolen = any_backend.claim("analysis", KEY_A, "beta", 5.0, now=106.0)
        assert stolen is not None and stolen.owner == "beta"

    def test_renew_requires_live_ownership(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 5.0, now=100.0)
        assert any_backend.renew("analysis", KEY_A, "beta", 5.0, now=101.0) is None
        assert any_backend.renew("analysis", KEY_A, "alpha", 5.0, now=106.0) is None
        renewed = any_backend.renew("analysis", KEY_A, "alpha", 5.0, now=104.0)
        assert renewed is not None and renewed.expires_at == 109.0

    def test_release_only_drops_own_lease(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 5.0, now=100.0)
        assert not any_backend.release("analysis", KEY_A, "beta")
        assert any_backend.release("analysis", KEY_A, "alpha")
        assert not any_backend.release("analysis", KEY_A, "alpha")
        assert any_backend.lease("analysis", KEY_A, now=100.0) is None

    def test_stale_release_never_clobbers_a_successor(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 5.0, now=100.0)
        assert any_backend.claim("analysis", KEY_A, "beta", 5.0, now=106.0)
        # alpha crashed, beta stole; alpha's late release must be a no-op.
        assert not any_backend.release("analysis", KEY_A, "alpha")
        held = any_backend.lease("analysis", KEY_A, now=107.0)
        assert held is not None and held.owner == "beta"

    def test_leases_are_slot_scoped(self, any_backend):
        assert any_backend.claim("analysis", KEY_A, "alpha", 5.0, now=100.0)
        assert any_backend.claim("analysis", KEY_B, "beta", 5.0, now=100.0)
        assert any_backend.claim("mining", KEY_A, "gamma", 5.0, now=100.0)
        assert any_backend.lease("analysis", KEY_A, now=101.0).owner == "alpha"
        assert any_backend.lease("analysis", KEY_B, now=101.0).owner == "beta"
        assert any_backend.lease("mining", KEY_A, now=101.0).owner == "gamma"

    def test_leases_are_invisible_to_artifact_scans(self, any_backend):
        any_backend.write("analysis", KEY_A, "{}")
        assert any_backend.claim("analysis", KEY_B, "alpha", 60.0, now=100.0)
        assert any_backend.keys("analysis") == [KEY_A]
        assert {(e.kind, e.key) for e in any_backend.entries()} == {
            ("analysis", KEY_A)
        }

    def test_bad_owner_and_ttl_rejected(self, any_backend):
        with pytest.raises(ServeError):
            any_backend.claim("analysis", KEY_A, "", 5.0)
        with pytest.raises(ServeError):
            any_backend.claim("analysis", KEY_A, "evil\nowner", 5.0)
        with pytest.raises(ServeError):
            any_backend.claim("analysis", KEY_A, "alpha", 0.0)
