"""Unit tests for the vectorized recipe → cuisine classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.classify import CuisineClassifier


@pytest.fixture(scope="module")
def classifier(full_results) -> CuisineClassifier:
    return CuisineClassifier.from_results(full_results)


def signature_recipe(full_results, cuisine: str, k: int = 6) -> list[str]:
    """An ingredient list stacked with a cuisine's most authentic items."""
    return [item for item, _ in full_results.fingerprints[cuisine].most_authentic[:k]]


class TestConstruction:
    def test_cuisines_and_vocabulary_compiled(self, classifier, full_results):
        assert classifier.cuisines == tuple(full_results.regions())
        assert len(classifier.vocabulary) > 0
        # Every fingerprint item is scoreable.
        fingerprint = full_results.fingerprints["Japanese"]
        for item, _ in fingerprint.most_authentic:
            assert item in classifier.vocabulary

    def test_invalid_weights_rejected(self, full_results):
        with pytest.raises(ServeError):
            CuisineClassifier.from_results(full_results, pattern_weight=-1.0)
        with pytest.raises(ServeError):
            CuisineClassifier.from_results(
                full_results, pattern_weight=0.0, authenticity_weight=0.0
            )


class TestClassification:
    def test_signature_recipes_classify_home(self, classifier, full_results):
        """Fingerprint-stacked recipes must land on their own cuisine mostly."""
        correct = 0
        cuisines = full_results.regions()
        for cuisine in cuisines:
            recipe = signature_recipe(full_results, cuisine)
            if classifier.classify(recipe).best == cuisine:
                correct += 1
        assert correct >= int(0.8 * len(cuisines))

    def test_batch_matches_single(self, classifier, full_results):
        recipes = [
            signature_recipe(full_results, cuisine)
            for cuisine in list(full_results.regions())[:5]
        ]
        batch = classifier.classify_batch(recipes)
        singles = [classifier.classify(recipe) for recipe in recipes]
        assert [c.best for c in batch] == [s.best for s in singles]
        for batched, single in zip(batch, singles):
            assert batched.scores == pytest.approx(single.scores)

    def test_large_batch_single_pass(self, classifier, full_results):
        """Thousands of recipes classify without issue (one numpy pass)."""
        base = [
            signature_recipe(full_results, cuisine)
            for cuisine in full_results.regions()
        ]
        recipes = [base[i % len(base)] for i in range(2000)]
        classifications = classifier.classify_batch(recipes)
        assert len(classifications) == 2000
        # Identical recipes classify identically.
        assert classifications[0].best == classifications[len(base)].best

    def test_unknown_items_reported_not_fatal(self, classifier):
        result = classifier.classify(["unobtainium", "vibranium"])
        assert result.known_items == 0
        assert set(result.unknown_items) == {"unobtainium", "vibranium"}
        assert result.matched_patterns == 0
        assert result.best in classifier.cuisines  # deterministic fallback

    def test_empty_batch(self, classifier):
        assert classifier.classify_batch([]) == []

    def test_deterministic_tie_breaking(self, classifier):
        # All-unknown recipes give all-zero scores for both evidence families,
        # so the winner must be the alphabetically first cuisine.
        result = classifier.classify(["unobtainium"])
        assert result.best == min(classifier.cuisines)

    def test_ranked_orders_scores(self, classifier, full_results):
        result = classifier.classify(signature_recipe(full_results, "Japanese"))
        ranked = result.ranked()
        values = [score for _, score in ranked]
        assert values == sorted(values, reverse=True)
        assert ranked[0][0] == result.best

    def test_matched_patterns_counts_containment(self, classifier, full_results):
        top = full_results.mining_results["Japanese"].top_pattern()
        result = classifier.classify(list(top.items))
        assert result.matched_patterns >= 1

    def test_to_dict_is_json_friendly(self, classifier, full_results):
        import json

        result = classifier.classify(signature_recipe(full_results, "Japanese"))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["best"] == result.best


class TestEvidenceFamilies:
    def test_negative_authenticity_votes_against(self, classifier, full_results):
        """Avoided items must lower a cuisine's score."""
        fingerprints = full_results.fingerprints["Japanese"]
        avoided = [item for item, value in fingerprints.least_authentic if value < 0]
        if not avoided:
            pytest.skip("no negatively-authentic items for Japanese in this corpus")
        base = signature_recipe(full_results, "Japanese")
        with_avoided = base + avoided[:3]
        base_score = classifier.classify(base).scores["Japanese"]
        worse_score = classifier.classify(with_avoided).scores["Japanese"]
        assert worse_score < base_score

    def test_pattern_only_classifier(self, full_results):
        classifier = CuisineClassifier.from_results(full_results, authenticity_weight=0.0)
        top = full_results.mining_results["Japanese"].top_pattern()
        result = classifier.classify(list(top.items))
        assert result.scores["Japanese"] > 0

    def test_authenticity_only_classifier(self, full_results):
        classifier = CuisineClassifier.from_results(full_results, pattern_weight=0.0)
        recipe = signature_recipe(full_results, "Japanese")
        result = classifier.classify(recipe)
        assert result.best == "Japanese"
        assert np.isfinite(list(result.scores.values())).all()


class TestTopK:
    def test_top_k_truncates_to_best(self, classifier, full_results):
        recipe = signature_recipe(full_results, "Japanese")
        full = classifier.classify(recipe)
        top = classifier.classify(recipe, top_k=3)
        assert top.ranked() == full.ranked()[:3]
        assert top.best == full.best
        assert len(top.scores) == 3

    def test_top_k_none_keeps_every_cuisine(self, classifier, full_results):
        recipe = signature_recipe(full_results, "Japanese")
        result = classifier.classify(recipe, top_k=None)
        assert set(result.scores) == set(classifier.cuisines)

    def test_top_k_beyond_cuisine_count_is_full(self, classifier, full_results):
        recipe = signature_recipe(full_results, "Japanese")
        result = classifier.classify(recipe, top_k=10_000)
        assert set(result.scores) == set(classifier.cuisines)

    def test_top_k_must_be_positive(self, classifier):
        with pytest.raises(ServeError):
            classifier.classify(["rice"], top_k=0)
        with pytest.raises(ServeError):
            classifier.classify(["rice"]).top_k(0)


class TestNaiveParity:
    def test_vectorized_matches_naive_baseline(self, classifier, full_results):
        """The matmul path agrees with the per-recipe Python reference."""
        recipes = [
            signature_recipe(full_results, cuisine)
            for cuisine in list(full_results.regions())[:8]
        ]
        recipes.append(["unobtainium"])
        recipes.append([])
        fast = classifier.classify_batch(recipes)
        slow = classifier.classify_batch_naive(recipes)
        for a, b in zip(fast, slow):
            assert a.matched_patterns == b.matched_patterns
            assert a.known_items == b.known_items
            assert a.unknown_items == b.unknown_items
            assert a.scores == pytest.approx(b.scores, abs=1e-5)
            assert a.best == b.best
