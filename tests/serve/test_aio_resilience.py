"""Resilience acceptance tests for the async serving front door.

Proves the degraded-mode contract end to end: failed background refreshes
keep serving the prior artifact flagged ``stale``, ``/healthz`` reports
``degraded`` once the storage breaker trips and ``failing`` after a compute
failure streak, compute deadlines turn hung flights into 503s instead of
wedged clients, and unexpected server errors come back as JSON 500s with an
error id.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core.config import AnalysisConfig
from repro.errors import DeadlineError
from repro.serve import codec
from repro.serve.aio import AnalysisServer, AsyncAnalysisService
from repro.serve.backends import MemoryBackend
from repro.serve.faults import FaultInjectingBackend
from repro.serve.resilience import CircuitBreaker, ResilientBackend, RetryPolicy
from repro.serve.service import ANALYSIS_KIND, AnalysisService, ServedAnalysis
from repro.serve.store import ArtifactStore

CONFIG = AnalysisConfig(seed=5, scale=0.02)


def run(coro):
    return asyncio.run(coro)


async def request(host, port, method, path, payload=None):
    """One one-shot HTTP exchange; returns (status, decoded JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    return int(head_part.split()[1]), json.loads(body_part)


class FlakyService:
    """Duck-typed AnalysisService with scriptable compute/refresh failures."""

    def __init__(self, backend=None):
        self.store = ArtifactStore(
            backend=backend if backend is not None else MemoryBackend()
        )
        self.computes = 0
        self.refreshes = 0
        self.fail_computes = 0  # how many upcoming computes raise
        self.fail_refreshes = 0  # how many upcoming refreshes raise
        self.compute_gate: threading.Event | None = None
        self.version = "v1"
        self._lock = threading.Lock()

    def get_or_run(self, config=None, *, database=None) -> ServedAnalysis:
        with self._lock:
            self.computes += 1
            source = "computed" if self.computes == 1 else "memory"
            if self.fail_computes:
                self.fail_computes -= 1
                raise OSError("injected compute failure")
        if self.compute_gate is not None:
            assert self.compute_gate.wait(10), "compute gate never released"
        return self._serve(source)

    def refresh(self, config=None) -> ServedAnalysis:
        with self._lock:
            self.refreshes += 1
            if self.fail_refreshes:
                self.fail_refreshes -= 1
                raise OSError("injected refresh failure")
            self.version = f"v{self.refreshes + 1}"
        self.seed_artifact(config)
        return self._serve("computed")

    def stats(self):
        return self.store.stats.to_dict()

    def describe(self):
        return {"counters": self.stats()}

    def _serve(self, source: str) -> ServedAnalysis:
        return ServedAnalysis(
            results=("results", self.version),
            source=source,
            key=codec.analysis_key(CONFIG),
            elapsed_seconds=0.0,
        )

    def seed_artifact(self, config=None) -> str:
        key = codec.analysis_key(config if config is not None else CONFIG)
        self.store.put(ANALYSIS_KIND, key, {"version": self.version})
        return key


def tripped_resilient_backend() -> ResilientBackend:
    """A resilient backend whose breaker has already tripped open."""
    backend = ResilientBackend(
        FaultInjectingBackend(MemoryBackend(), "any:*:oserror"),
        retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        breaker=CircuitBreaker(failure_threshold=1, reset_timeout=3600.0),
        sleep=lambda _s: None,
    )
    backend.read("analysis", "a" * 8)  # one exhausted read trips the breaker
    assert backend.breaker.state == "open"
    return backend


class TestServeStaleOnRefreshFailure:
    def test_failed_refresh_keeps_old_artifact_and_flags_stale(self, tmp_path):
        service = FlakyService()

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:1") as svc:
                first = await svc.get(CONFIG)
                assert first.source == "computed" and first.stale is False
                service.seed_artifact(CONFIG)

                service.fail_refreshes = 1
                refreshed = await svc.refresh_once(now=time.time() + 1000)
                assert refreshed == []
                assert svc.refresh_errors == 1

                # The prior artifact keeps serving, marked stale.
                second = await svc.get(CONFIG)
                assert second.source == "memory"
                assert second.stale is True
                assert second.results == ("results", "v1")
                assert svc.stale_served == 1
                assert svc.health()["status"] == "degraded"

                # A successful refresh clears the flag.
                recovered = await svc.refresh_once(now=time.time() + 1000)
                assert recovered
                third = await svc.get(CONFIG)
                assert third.stale is False
                assert svc.health()["status"] == "ok"

        run(scenario())

    def test_stale_flag_round_trips_to_dict(self, tmp_path):
        service = FlakyService()

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:1") as svc:
                await svc.get(CONFIG)
                service.seed_artifact(CONFIG)
                service.fail_refreshes = 1
                await svc.refresh_once(now=time.time() + 1000)
                return await svc.get(CONFIG)

        served = run(scenario())
        assert served.to_dict()["stale"] is True


class TestHealth:
    def test_healthz_reports_degraded_when_breaker_open(self):
        service = FlakyService(backend=tripped_resilient_backend())

        async def scenario():
            async_service = AsyncAnalysisService(service)
            server = AnalysisServer(async_service)
            try:
                host, port = await server.start()
                return await request(host, port, "GET", "/healthz")
            finally:
                await server.aclose()

        status, payload = run(scenario())
        assert status == 200  # always answerable; the body carries the state
        assert payload["status"] == "degraded"
        assert payload["backend"] == "degraded"

    def test_compute_failure_streak_escalates_to_failing(self):
        service = FlakyService()

        async def scenario():
            async with AsyncAnalysisService(service, failing_threshold=3) as svc:
                service.fail_computes = 3
                for _ in range(3):
                    with pytest.raises(OSError):
                        await svc.get(CONFIG)
                    await asyncio.sleep(0)  # let the flight's landing run
                assert svc.health()["status"] == "failing"
                assert svc.health()["failure_streak"] == 3
                assert svc.compute_failures == 3

                # One success resets the streak and the status.
                served = await svc.get(CONFIG)
                await asyncio.sleep(0)
                assert served.results == ("results", "v1")
                assert svc.health()["status"] == "ok"
                assert svc.compute_failures == 3  # cumulative counter stays

        run(scenario())

    def test_describe_includes_health_payload(self):
        service = FlakyService()

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                return svc.describe()

        payload = run(scenario())
        assert payload["health"]["status"] == "ok"
        assert "deadline_timeouts" in payload["health"]

    def test_sync_describe_reports_resilience_and_faults(self, tmp_path):
        backend = ResilientBackend(
            FaultInjectingBackend(MemoryBackend(), "read:1:oserror"),
            sleep=lambda _s: None,
        )
        service = AnalysisService(ArtifactStore(backend=backend))
        payload = service.describe()
        assert payload["resilience"]["breaker"] == "closed"
        assert payload["fault_injection"]["plan"] == "read:1:oserror"


class TestComputeDeadline:
    def test_deadline_raises_instead_of_wedging(self):
        service = FlakyService()
        service.compute_gate = threading.Event()

        async def scenario():
            svc = AsyncAnalysisService(service, compute_deadline=0.05)
            try:
                with pytest.raises(DeadlineError):
                    await svc.get(CONFIG)
                assert svc.deadline_timeouts == 1
                # The flight is still running; releasing it lets the same
                # compute finish and serve the next caller.
                service.compute_gate.set()
                served = await svc.get(CONFIG)
                assert served.results == ("results", "v1")
            finally:
                service.compute_gate.set()
                await svc.aclose()

        run(scenario())
        assert service.computes == 1  # the deadlined flight was joined, not redone

    def test_deadline_maps_to_http_503(self):
        service = FlakyService()
        service.compute_gate = threading.Event()

        async def scenario():
            async_service = AsyncAnalysisService(service, compute_deadline=0.05)
            server = AnalysisServer(async_service)
            try:
                host, port = await server.start()
                return await request(
                    host, port, "POST", "/analyze", {"config": {"seed": 5, "scale": 0.02}}
                )
            finally:
                service.compute_gate.set()
                await server.aclose()

        status, payload = run(scenario())
        assert status == 503
        assert payload["retry"] is True
        assert "deadline" in payload["error"]


class TestInternalErrorSurface:
    def test_unexpected_error_is_json_500_with_error_id(self):
        service = FlakyService()

        def explode(config=None, *, database=None):
            raise RuntimeError("wires crossed")

        service.get_or_run = explode

        async def scenario():
            async_service = AsyncAnalysisService(service)
            server = AnalysisServer(async_service)
            try:
                host, port = await server.start()
                first = await request(
                    host, port, "POST", "/analyze", {"config": {"seed": 5}}
                )
                second = await request(
                    host, port, "POST", "/analyze", {"config": {"seed": 6}}
                )
                return first, second
            finally:
                await server.aclose()

        (status1, payload1), (status2, payload2) = run(scenario())
        assert status1 == status2 == 500
        assert "wires crossed" in payload1["error"]
        assert payload1["error_id"] == "e000001"
        assert payload2["error_id"] == "e000002"  # ids are distinct and ordered
        assert service.store.stats.request_errors == 2

    def test_request_errors_counter_in_stats_payload(self):
        assert "request_errors" in FlakyService().stats()
