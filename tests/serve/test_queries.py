"""Unit tests for the read-path query engine."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.queries import QueryEngine


@pytest.fixture(scope="module")
def engine(full_results) -> QueryEngine:
    return QueryEngine(full_results)


class TestNearestCuisines:
    def test_returns_k_sorted_neighbours(self, engine):
        nearest = engine.nearest_cuisines("Japanese", k=5)
        assert len(nearest) == 5
        distances = [distance for _, distance in nearest]
        assert distances == sorted(distances)
        assert all(name != "Japanese" for name, _ in nearest)

    def test_matches_distance_matrix(self, engine, full_results):
        run = full_results.run_for("figure2")
        (name, distance), *_ = engine.nearest_cuisines("Japanese", k=1)
        assert distance == pytest.approx(run.distances.distance("Japanese", name))
        # No other cuisine is strictly closer.
        for other in run.labels:
            if other != "Japanese":
                assert run.distances.distance("Japanese", other) >= distance

    def test_every_figure_view_works(self, engine):
        for figure in QueryEngine.FIGURES:
            run_labels = engine.results.run_for(figure).labels
            nearest = engine.nearest_cuisines(run_labels[0], k=2, figure=figure)
            assert len(nearest) == 2

    def test_unknown_cuisine_rejected(self, engine):
        with pytest.raises(ServeError):
            engine.nearest_cuisines("Atlantis")

    def test_bad_k_rejected(self, engine):
        with pytest.raises(ServeError):
            engine.nearest_cuisines("Japanese", k=0)


class TestPatternSearch:
    def test_single_item_search(self, engine):
        hits = engine.pattern_search("soy sauce")
        assert hits
        assert all("soy sauce" in hit.pattern for hit in hits)
        supports = [hit.support for hit in hits]
        assert supports == sorted(supports, reverse=True)

    def test_region_filter(self, engine):
        hits = engine.pattern_search("soy sauce", region="Japanese")
        assert hits
        assert {hit.region for hit in hits} == {"Japanese"}

    def test_min_support_and_limit(self, engine):
        all_hits = engine.pattern_search("soy sauce")
        filtered = engine.pattern_search("soy sauce", min_support=0.5)
        assert len(filtered) <= len(all_hits)
        assert all(hit.support >= 0.5 for hit in filtered)
        assert len(engine.pattern_search("soy sauce", limit=2)) <= 2

    def test_multi_item_conjunction(self, engine, full_results):
        # Find a real compound pattern to query for.
        compound = None
        for region, result in full_results.mining_results.items():
            for pattern in result.non_singletons():
                compound = (region, pattern)
                break
            if compound:
                break
        assert compound is not None, "corpus must mine at least one compound pattern"
        region, pattern = compound
        hits = engine.pattern_search(pattern.items, region=region)
        assert any(hit.pattern == pattern.as_string() for hit in hits)

    def test_empty_query_rejected(self, engine):
        with pytest.raises(ServeError):
            engine.pattern_search([])

    def test_unknown_region_rejected(self, engine):
        with pytest.raises(ServeError):
            engine.pattern_search("soy sauce", region="Atlantis")


class TestAuthenticityAndProfiles:
    def test_authenticity_profile_sorted_descending(self, engine, full_results):
        fingerprint = full_results.fingerprints["Japanese"]
        item, value = fingerprint.most_authentic[0]
        profile = engine.authenticity_profile(item)
        assert profile["Japanese"] == pytest.approx(value)
        values = list(profile.values())
        assert values == sorted(values, reverse=True)

    def test_unknown_item_gives_empty_profile(self, engine):
        assert engine.authenticity_profile("unobtainium") == {}

    def test_signature_items(self, engine, full_results):
        items = engine.signature_items("Japanese", k=3)
        assert items == list(full_results.fingerprints["Japanese"].most_authentic[:3])
        with pytest.raises(ServeError):
            engine.signature_items("Atlantis")

    def test_top_patterns(self, engine, full_results):
        hits = engine.top_patterns("Japanese", k=3)
        expected = full_results.mining_results["Japanese"].top(3)
        assert [hit.pattern for hit in hits] == [p.as_string() for p in expected]
        assert all(hit.region == "Japanese" for hit in hits)

    def test_cuisine_profile_card(self, engine):
        card = engine.cuisine_profile("Japanese", k=3)
        assert card["cuisine"] == "Japanese"
        assert card["n_recipes"] > 0
        assert len(card["top_patterns"]) == 3
        assert len(card["nearest_by_patterns"]) == 3
        assert len(card["nearest_by_authenticity"]) == 3
        assert all("item" in row for row in card["signature_items"])
