"""Behavioural tests for the memoizing AnalysisService.

Cache semantics under test: hit on an identical config, miss on a changed
seed / support, mining-stage reuse for clustering-only changes, recovery from
corrupt cache files, and correctness of served (decoded) results.
"""

from __future__ import annotations

import pytest

from repro.core.config import AnalysisConfig
from repro.core.pipeline import CuisineClusteringPipeline
from repro.serve import codec
from repro.serve.service import ANALYSIS_KIND, AnalysisService
from repro.serve.store import ArtifactStore

CONFIG = AnalysisConfig(seed=11, scale=0.02, elbow_k_max=6)


@pytest.fixture()
def service(tmp_path) -> AnalysisService:
    return AnalysisService(tmp_path / "cache")


@pytest.fixture()
def mining_calls(monkeypatch):
    """Count fresh mining passes without disturbing their behaviour."""
    calls = []
    original = AnalysisService._mine_fresh

    def counting(self, config, *args, **kwargs):
        calls.append(config)
        return original(self, config, *args, **kwargs)

    monkeypatch.setattr(AnalysisService, "_mine_fresh", counting)
    return calls


class TestCacheHits:
    def test_identical_config_hits_memory(self, service):
        first = service.get_or_run(CONFIG)
        second = service.get_or_run(CONFIG)
        assert first.source == "computed"
        assert second.source == "memory"
        assert second.results == first.results
        assert second.results is first.results  # served from the decoded cache

    def test_fresh_service_hits_disk(self, service, tmp_path):
        computed = service.get_or_run(CONFIG)
        reloaded = AnalysisService(tmp_path / "cache").get_or_run(CONFIG)
        assert reloaded.source == "disk"
        assert reloaded.results == computed.results

    def test_changed_seed_misses(self, service, mining_calls):
        service.get_or_run(CONFIG)
        changed = service.get_or_run(CONFIG.with_overrides(seed=12))
        assert changed.source == "computed"
        assert not changed.mining_reused
        assert len(mining_calls) == 2

    def test_lowered_support_remines(self, service, mining_calls):
        # Lowering the threshold needs patterns the cached run never mined,
        # so the incremental fast path cannot apply.
        service.get_or_run(CONFIG)
        changed = service.get_or_run(CONFIG.with_overrides(min_support=0.1))
        assert changed.source == "computed"
        assert not changed.mining_reused
        assert not changed.mining_incremental
        assert len(mining_calls) == 2

    def test_raised_support_filters_cached_superset(self, service, mining_calls):
        # Downward closure: raising min_support must *not* re-run the miner —
        # the cached 0.2 run is a superset of the 0.3 run.
        service.get_or_run(CONFIG)
        assert len(mining_calls) == 1
        changed = service.get_or_run(CONFIG.with_overrides(min_support=0.3))
        assert changed.source == "computed"
        assert changed.mining_reused
        assert changed.mining_incremental
        assert len(mining_calls) == 1  # zero additional miner invocations

    def test_incremental_mining_equals_fresh_mine(self, tmp_path):
        # The filtered superset must be indistinguishable from a fresh run.
        raised = CONFIG.with_overrides(min_support=0.3)
        warm = AnalysisService(tmp_path / "warm")
        warm.get_or_run(CONFIG)
        incremental = warm.get_or_run(raised)
        assert incremental.mining_incremental
        cold = AnalysisService(tmp_path / "cold").get_or_run(raised)
        assert not cold.mining_incremental
        assert incremental.results == cold.results

    def test_clustering_only_change_reuses_mining(self, service, mining_calls):
        service.get_or_run(CONFIG)
        changed = service.get_or_run(CONFIG.with_overrides(linkage_method="complete"))
        assert changed.source == "computed"  # full analysis is a miss ...
        assert changed.mining_reused  # ... but FP-Growth is not re-run
        assert len(mining_calls) == 1
        assert changed.results.fihc.run.method == "complete"
        # Identical mining artifacts reached the new analysis.
        base = service.get_or_run(CONFIG)
        assert dict(changed.results.mining_results) == dict(base.results.mining_results)

    def test_warm_accepts_single_and_many(self, service):
        [only] = service.warm(CONFIG)
        assert only.source == "computed"
        served = service.warm([CONFIG, CONFIG.with_overrides(seed=12)])
        assert [s.source for s in served] == ["memory", "computed"]


class TestInvalidation:
    def test_invalidate_forces_recompute(self, service, mining_calls):
        service.get_or_run(CONFIG)
        assert service.invalidate(CONFIG)
        recomputed = service.get_or_run(CONFIG)
        assert recomputed.source == "computed"
        assert recomputed.mining_reused  # mining cache survives by default
        assert len(mining_calls) == 1

    def test_invalidate_with_mining_recomputes_everything(self, service, mining_calls):
        service.get_or_run(CONFIG)
        service.invalidate(CONFIG, mining=True)
        recomputed = service.get_or_run(CONFIG)
        assert recomputed.source == "computed"
        assert not recomputed.mining_reused
        assert len(mining_calls) == 2

    def test_invalidate_missing_returns_false(self, service):
        assert not service.invalidate(CONFIG)

    def test_invalidate_from_another_handle_is_honoured(self, service, tmp_path):
        service.get_or_run(CONFIG)
        other = AnalysisService(tmp_path / "cache")
        assert other.invalidate(CONFIG)
        # The original handle must not serve its stale decoded copy.
        recomputed = service.get_or_run(CONFIG)
        assert recomputed.source == "computed"


class TestCorruptRecovery:
    def test_corrupt_analysis_file_recomputes(self, service, tmp_path):
        computed = service.get_or_run(CONFIG)
        store = ArtifactStore(tmp_path / "cache")
        key = codec.analysis_key(CONFIG)
        store.path_for(ANALYSIS_KIND, key).write_text("{corrupt", encoding="utf-8")
        fresh = AnalysisService(tmp_path / "cache")
        recovered = fresh.get_or_run(CONFIG)
        assert recovered.source == "computed"
        assert recovered.results == computed.results

    def test_stale_schema_recomputes(self, service, tmp_path):
        service.get_or_run(CONFIG)
        key = codec.analysis_key(CONFIG)
        store = ArtifactStore(tmp_path / "cache")
        payload = store.get(ANALYSIS_KIND, key)
        payload = dict(payload)
        payload["schema_version"] = 999
        store.put(ANALYSIS_KIND, key, payload)
        fresh = AnalysisService(tmp_path / "cache")
        assert fresh.get_or_run(CONFIG).source == "computed"


class TestServedResults:
    def test_served_equals_direct_pipeline_run(self, service):
        served = service.get_or_run(CONFIG)
        direct = CuisineClusteringPipeline(CONFIG).run()
        assert served.results == direct

    def test_disk_loaded_results_fully_usable(self, service, tmp_path):
        service.get_or_run(CONFIG)
        reloaded = AnalysisService(tmp_path / "cache").get_or_run(CONFIG).results
        # Exercise the artifact behaviours, not just equality.
        assert reloaded.run_for("figure2").flat_clusters(3)
        assert reloaded.best_geography_match()[1].bakers_gamma == pytest.approx(
            reloaded.best_geography_match()[1].bakers_gamma
        )
        assert reloaded.summary()["n_regions"] == reloaded.corpus_stats.n_regions

    def test_explicit_database_bypasses_cache(self, service, full_corpus):
        served = service.get_or_run(CONFIG, database=full_corpus)
        assert served.source == "computed"
        assert service.cached_keys() == []

    def test_cached_keys_lists_persisted_analyses(self, service):
        assert service.cached_keys() == []
        service.get_or_run(CONFIG)
        service.get_or_run(CONFIG.with_overrides(seed=12))
        assert len(service.cached_keys()) == 2
        assert codec.analysis_key(CONFIG) in service.cached_keys()

    def test_zero_memory_capacity_always_serves_from_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", max_memory_entries=0)
        service = AnalysisService(store)
        assert service.get_or_run(CONFIG).source == "computed"
        assert service.get_or_run(CONFIG).source == "disk"
        assert service.stats()["memory_hits"] == 0

    def test_stats_report_traffic(self, service):
        service.get_or_run(CONFIG)
        service.get_or_run(CONFIG)
        stats = service.stats()
        assert stats["writes"] == 3  # analysis + mining + mining-index artifacts
        assert stats["memory_hits"] >= 1
        assert "evictions" in stats


class TestCorpusCache:
    def test_corpus_persisted_and_reused(self, service, mining_calls, tmp_path):
        service.get_or_run(CONFIG)
        corpus_file = service.corpus_path(CONFIG)
        assert corpus_file.exists()
        # A clustering-only sweep entry shares the corpus key.
        assert service.corpus_path(
            CONFIG.with_overrides(min_support=0.3)
        ) == corpus_file

        # A fresh service over the same directory must load the corpus from
        # disk, not regenerate it: poison the generator to prove it.
        fresh = AnalysisService(tmp_path / "cache")
        boom = pytest.MonkeyPatch()
        try:
            boom.setattr(
                CuisineClusteringPipeline,
                "build_corpus",
                lambda self: (_ for _ in ()).throw(AssertionError("regenerated")),
            )
            served = fresh.get_or_run(CONFIG.with_overrides(min_support=0.3))
        finally:
            boom.undo()
        assert served.source == "computed"
        assert served.results.corpus_stats == service.get_or_run(CONFIG).results.corpus_stats

    def test_corrupt_corpus_file_regenerates(self, service, tmp_path):
        first = service.get_or_run(CONFIG)
        service.corpus_path(CONFIG).write_text("{broken", encoding="utf-8")
        fresh = AnalysisService(tmp_path / "cache")
        fresh.invalidate(CONFIG, mining=True)
        recovered = fresh.get_or_run(CONFIG)
        assert recovered.source == "computed"
        assert recovered.results == first.results

    def test_hand_edited_corpus_with_bad_shape_regenerates(self, service, tmp_path):
        # Valid JSON whose region entries have the wrong shape must read as
        # a serialization failure (and thus regenerate), not crash the read.
        first = service.get_or_run(CONFIG)
        service.corpus_path(CONFIG).write_text(
            '{"format_version": 1, "regions": ["oops"], "recipes": []}',
            encoding="utf-8",
        )
        fresh = AnalysisService(tmp_path / "cache")
        fresh.invalidate(CONFIG, mining=True)
        recovered = fresh.get_or_run(CONFIG)
        assert recovered.source == "computed"
        assert recovered.results == first.results

    def test_transaction_matrices_shared_across_sweep(self, service, monkeypatch):
        """A min_support sweep compiles each region's TransactionMatrix once."""
        from repro.mining.bitmatrix import TransactionMatrix

        compilations = []
        original = TransactionMatrix.__init__

        def counting(self, transactions):
            compilations.append(len(transactions))
            original(self, transactions)

        monkeypatch.setattr(TransactionMatrix, "__init__", counting)
        service.get_or_run(CONFIG)
        first = len(compilations)
        assert first > 0
        # Lowered support cannot reuse cached mining, so the miner runs again
        # — but over the already-compiled matrices.
        service.get_or_run(CONFIG.with_overrides(min_support=0.15))
        assert len(compilations) == first
