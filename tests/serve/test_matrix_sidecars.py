"""Service-level corpus-matrix sidecar lifecycle: persist, share, invalidate.

The acceptance contract: once a config has been computed, every later mining
pass over the same corpus -- in this process or any other, serial or fanned
out over workers -- slices its regions out of the single memory-mapped
``corpus-<key>.matrix`` arena instead of re-running ``np.packbits``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import AnalysisConfig
from repro.mining.bitmatrix import TransactionMatrix
from repro.serve.service import (
    AnalysisService,
    LEGACY_MATRIX_DIR_SUFFIX,
    MATRIX_FILE_SUFFIX,
)

CONFIG = AnalysisConfig(seed=11, scale=0.02, elbow_k_max=6)


@pytest.fixture()
def service(tmp_path) -> AnalysisService:
    return AnalysisService(tmp_path / "cache")


@pytest.fixture()
def compile_counter(monkeypatch):
    """Count TransactionMatrix compiles (the packbits pass) in this process."""
    calls = []
    original = TransactionMatrix.__init__

    def counting(self, transactions):
        calls.append(len(transactions))
        return original(self, transactions)

    monkeypatch.setattr(TransactionMatrix, "__init__", counting)
    return calls


class TestSidecarLifecycle:
    def test_compute_persists_the_corpus_sidecar(self, service):
        service.get_or_run(CONFIG)
        prefix = service.matrix_path(CONFIG)
        assert prefix.name.endswith(MATRIX_FILE_SUFFIX)
        meta_path = prefix.with_name(prefix.name + ".meta.json")
        meta = json.loads(meta_path.read_text("utf-8"))
        assert meta["kind"] == "corpus"
        assert len(meta["regions"]) >= 2
        # One arena for the whole corpus: exactly one rows file, not per-region.
        rows_files = list(prefix.parent.glob("corpus-*.rows.npy"))
        assert len(rows_files) == 1

    def test_fresh_service_maps_instead_of_compiling(
        self, service, tmp_path, compile_counter
    ):
        service.get_or_run(CONFIG)
        compiles_after_first = len(compile_counter)
        assert compiles_after_first > 0  # the cold run compiled every region

        reloaded = AnalysisService(tmp_path / "cache")
        reloaded.invalidate(CONFIG, mining=True)  # force a real mining pass
        served = reloaded.get_or_run(CONFIG)
        assert served.source == "computed"
        assert len(compile_counter) == compiles_after_first  # zero new compiles

    def test_parallel_warm_reports_zero_worker_compiles(self, service, tmp_path):
        service.get_or_run(CONFIG)
        parallel = AnalysisService(tmp_path / "cache", workers=2)
        parallel.invalidate(CONFIG, mining=True)
        served = parallel.get_or_run(CONFIG)
        assert served.source == "computed"
        assert served.workers == 2
        assert served.worker_compiles == 0
        assert parallel.last_mining_report.compiles == 0
        assert parallel.last_mining_report.pool_size == 2
        assert served.results == service.get_or_run(CONFIG).results

    def test_parallel_and_serial_results_identical(self, tmp_path):
        serial = AnalysisService(tmp_path / "a", workers=0).get_or_run(CONFIG)
        parallel = AnalysisService(tmp_path / "b", workers=2).get_or_run(CONFIG)
        auto = AnalysisService(tmp_path / "c", workers="auto").get_or_run(CONFIG)
        assert serial.results == parallel.results
        assert serial.results == auto.results

    def test_corpus_change_invalidates_the_sidecar(
        self, service, tmp_path, compile_counter
    ):
        service.get_or_run(CONFIG)
        prefix = service.matrix_path(CONFIG)
        meta_path = prefix.with_name(prefix.name + ".meta.json")
        old_fingerprint = json.loads(meta_path.read_text("utf-8"))["fingerprint"]

        # Rewrite the corpus file with different bytes (semantically equal
        # JSON, so the pipeline still runs): the sidecar fingerprint is a
        # content digest, so it no longer matches.
        corpus_path = service.corpus_path(CONFIG)
        corpus_path.write_text(
            corpus_path.read_text(encoding="utf-8") + "\n \n", encoding="utf-8"
        )

        reloaded = AnalysisService(tmp_path / "cache")
        reloaded.invalidate(CONFIG, mining=True)
        compiles_before = len(compile_counter)
        reloaded.get_or_run(CONFIG)
        assert len(compile_counter) > compiles_before  # matrices recompiled
        new_fingerprint = json.loads(meta_path.read_text("utf-8"))["fingerprint"]
        assert new_fingerprint != old_fingerprint

    def test_corrupt_sidecar_rebuilt(self, service, tmp_path, compile_counter):
        service.get_or_run(CONFIG)
        prefix = service.matrix_path(CONFIG)
        victim = prefix.with_name(prefix.name + ".rows.npy")
        victim.write_bytes(b"garbage")

        reloaded = AnalysisService(tmp_path / "cache")
        reloaded.invalidate(CONFIG, mining=True)
        compiles_before = len(compile_counter)
        served = reloaded.get_or_run(CONFIG)
        assert served.source == "computed"
        assert len(compile_counter) > compiles_before
        # The rebuilt sidecar is loadable again.
        assert victim.stat().st_size > len(b"garbage")

    def test_legacy_per_region_directory_swept(self, service):
        # A pre-PR-8 layout left a corpus-<key>.matrices/ directory behind;
        # the first compute with the global sidecar retires it.
        legacy = service._legacy_matrix_dir(CONFIG)
        legacy.mkdir(parents=True)
        (legacy / "r000.rows.npy").write_bytes(b"old")
        (legacy / "manifest.json").write_text("{}", encoding="utf-8")
        service.get_or_run(CONFIG)
        assert not legacy.exists()
        assert legacy.name.endswith(LEGACY_MATRIX_DIR_SUFFIX)

    def test_served_workers_recorded_on_cache_hits(self, tmp_path):
        warm = AnalysisService(tmp_path / "cache", workers=3)
        warm.get_or_run(CONFIG)
        hit = warm.get_or_run(CONFIG)
        assert hit.source == "memory"
        assert hit.workers == 3
        assert hit.worker_compiles == 0

    def test_auto_workers_surface_in_provenance_and_stats(self, tmp_path):
        auto = AnalysisService(tmp_path / "cache", workers="auto")
        served = auto.get_or_run(CONFIG)
        assert served.workers == "auto"
        payload = auto.describe()
        assert payload["workers"] == "auto"
        assert payload["mining"]["workers"] == "auto"
        assert payload["mining"]["dispatch"]["mode"] in {"serial", "pool"}
