"""Property-based lease lifecycle: a model-checked state machine per backend.

Hypothesis drives random interleavings of ``claim`` / ``renew`` / ``release``
/ clock advances from a small cast of owners against each real backend,
mirroring every step in a trivial reference model (one ``(owner,
expires_at)`` slot).  The invariant checked after every rule is the whole
lease contract at once:

* at most one live holder exists, and :meth:`lease` reports exactly the
  model's holder (never two live holders, never a phantom);
* a claim wins if and only if the model says the slot is free, expired, or
  already ours;
* renew succeeds only for the live holder;
* release succeeds only for the current holder -- a stale release (from an
  owner whose lease expired and was re-claimed) never clobbers a successor.

Time is a fake monotonic clock advanced explicitly by a rule, and TTLs and
deltas are integers, so expiry comparisons are exact -- no float-epsilon
flakes, fully deterministic replay on failure.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.serve.backends import create_backend

KIND = "analysis"
KEY = "feedfacecafe"

OWNERS = st.sampled_from(["alpha", "beta", "gamma"])
TTLS = st.integers(min_value=1, max_value=20)
STEPS = st.integers(min_value=1, max_value=15)

#: Clock origin far from zero so no backend can confuse "never" with "now".
EPOCH = 1_000.0


class LeaseLifecycle(RuleBasedStateMachine):
    """One slot, three owners, a fake clock, and the real backend under test."""

    backend_name: str = "memory"

    def __init__(self) -> None:
        super().__init__()
        self.root = Path(tempfile.mkdtemp(prefix="lease-machine-"))
        self.backend = create_backend(self.backend_name, self.root / "cache")
        self.now = EPOCH
        # The reference model: (owner, expires_at) of the slot, or None.
        self.model: tuple[str, float] | None = None

    def teardown(self) -> None:
        self.backend.close()
        shutil.rmtree(self.root, ignore_errors=True)

    # -- model helpers ----------------------------------------------------------------

    def _live_holder(self) -> tuple[str, float] | None:
        if self.model is not None and self.model[1] > self.now:
            return self.model
        return None

    # -- rules ------------------------------------------------------------------------

    @rule(steps=STEPS)
    def advance_clock(self, steps: int) -> None:
        self.now += steps

    @rule(owner=OWNERS, ttl=TTLS)
    def claim(self, owner: str, ttl: int) -> None:
        lease = self.backend.claim(KIND, KEY, owner, ttl, now=self.now)
        live = self._live_holder()
        if live is None or live[0] == owner:
            # Free, expired, or an idempotent re-claim: must win.
            assert lease is not None
            assert lease.owner == owner
            assert lease.expires_at == self.now + ttl
            self.model = (owner, self.now + ttl)
        else:
            assert lease is None

    @rule(owner=OWNERS, ttl=TTLS)
    def renew(self, owner: str, ttl: int) -> None:
        lease = self.backend.renew(KIND, KEY, owner, ttl, now=self.now)
        live = self._live_holder()
        if live is not None and live[0] == owner:
            assert lease is not None
            assert lease.expires_at == self.now + ttl
            self.model = (owner, self.now + ttl)
        else:
            assert lease is None

    @rule(owner=OWNERS)
    def release(self, owner: str) -> None:
        dropped = self.backend.release(KIND, KEY, owner)
        # Release is owner-checked against the *stored* slot, live or not:
        # an expired-but-unclaimed lease may still be cleaned up by its
        # owner, while a stale owner must never clobber a successor's claim.
        if self.model is not None and self.model[0] == owner:
            assert dropped
            self.model = None
        else:
            assert not dropped

    # -- the contract, checked after every rule ---------------------------------------

    @invariant()
    def backend_matches_model(self) -> None:
        lease = self.backend.lease(KIND, KEY, now=self.now)
        live = self._live_holder()
        if live is None:
            assert lease is None
        else:
            assert lease is not None
            assert (lease.owner, lease.expires_at) == live


COMMON = settings(max_examples=30, stateful_step_count=25, deadline=None)


class MemoryLeaseLifecycle(LeaseLifecycle):
    backend_name = "memory"


class DirectoryLeaseLifecycle(LeaseLifecycle):
    backend_name = "directory"


class SqliteLeaseLifecycle(LeaseLifecycle):
    backend_name = "sqlite"


TestMemoryLeaseLifecycle = MemoryLeaseLifecycle.TestCase
TestMemoryLeaseLifecycle.settings = COMMON
TestDirectoryLeaseLifecycle = DirectoryLeaseLifecycle.TestCase
TestDirectoryLeaseLifecycle.settings = COMMON
TestSqliteLeaseLifecycle = SqliteLeaseLifecycle.TestCase
TestSqliteLeaseLifecycle.settings = COMMON
