"""Eviction policies: pure victim selection, spec parsing, store integration.

The store integration tests drive a fake clock through the engine so TTL
decisions are deterministic, and run over every backend (the memory front is
backend-agnostic; the disk-policy tests assert backend deletion too).
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.backends import MemoryBackend
from repro.serve.eviction import (
    LRU,
    TTL,
    CompositePolicy,
    EntryInfo,
    MaxBytes,
    NoEviction,
    parse_policy,
)
from repro.serve.store import ArtifactStore

KEY_A = "a" * 8
KEY_B = "b" * 8
KEY_C = "c" * 8


def entry(size=10, stored_at=0.0, last_access=0.0) -> EntryInfo:
    return EntryInfo(size, stored_at, last_access)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPolicies:
    def test_lru_keeps_newest(self):
        entries = [("a", entry()), ("b", entry()), ("c", entry())]
        assert LRU(2).victims(entries, now=0.0) == ["a"]
        assert LRU(3).victims(entries, now=0.0) == []
        assert LRU(0).victims(entries, now=0.0) == ["a", "b", "c"]

    def test_ttl_expires_by_write_age(self):
        entries = [("old", entry(stored_at=0.0)), ("new", entry(stored_at=90.0))]
        assert TTL(60).victims(entries, now=100.0) == ["old"]
        assert TTL(200).victims(entries, now=100.0) == []

    def test_maxbytes_drops_lru_until_fit(self):
        entries = [("a", entry(size=40)), ("b", entry(size=40)), ("c", entry(size=40))]
        assert MaxBytes(100).victims(entries, now=0.0) == ["a"]
        assert MaxBytes(40).victims(entries, now=0.0) == ["a", "b"]
        assert MaxBytes(0).victims(entries, now=0.0) == ["a", "b", "c"]

    def test_composite_is_sequential_union(self):
        entries = [
            ("stale", entry(size=10, stored_at=0.0)),
            ("big", entry(size=100, stored_at=95.0)),
            ("small", entry(size=10, stored_at=99.0)),
        ]
        policy = TTL(60) & MaxBytes(50)
        # TTL removes "stale" first; MaxBytes then sees only big+small.
        assert policy.victims(entries, now=100.0) == ["stale", "big"]

    def test_composite_flattens_and_describes(self):
        policy = LRU(8) & TTL(60) & MaxBytes(1024)
        assert isinstance(policy, CompositePolicy)
        assert len(policy.policies) == 3
        assert policy.describe() == "lru:8+ttl:60+maxbytes:1024"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServeError):
            LRU(-1)
        with pytest.raises(ServeError):
            TTL(0)
        with pytest.raises(ServeError):
            MaxBytes(-5)


class TestParsePolicy:
    def test_primitives_roundtrip(self):
        for spec in ("lru:32", "ttl:600", "maxbytes:1048576"):
            assert parse_policy(spec).describe() == spec

    def test_composite_roundtrip(self):
        assert parse_policy("lru:32+ttl:600").describe() == "lru:32+ttl:600"

    def test_explicit_none_is_no_eviction(self):
        policy = parse_policy("none")
        assert isinstance(policy, NoEviction)
        assert policy.describe() == "none"
        assert policy.victims([("a", entry())], now=1e12) == []

    def test_empty_spec_means_unspecified(self):
        assert parse_policy("") is None

    def test_bad_specs_rejected(self):
        for spec in ("lru", "lru:abc", "fifo:3", "ttl:-1"):
            with pytest.raises(ServeError):
                parse_policy(spec)


class TestMemoryFrontPolicies:
    def test_ttl_expires_memory_entries(self, any_backend):
        clock = FakeClock()
        store = ArtifactStore(
            backend=any_backend, memory_policy=TTL(60), clock=clock
        )
        store.put("analysis", KEY_A, {"v": 1})
        assert store.get("analysis", KEY_A) == {"v": 1}
        assert store.stats.memory_hits == 1
        clock.advance(61)
        # Expired in memory, still durable: the read falls through to the
        # backend and re-remembers with a fresh TTL.
        assert store.get("analysis", KEY_A) == {"v": 1}
        assert store.stats.evictions == 1
        assert store.stats.disk_hits == 1
        assert store.get("analysis", KEY_A) == {"v": 1}
        assert store.stats.memory_hits == 2

    def test_maxbytes_bounds_memory(self, any_backend):
        store = ArtifactStore(
            backend=any_backend, memory_policy=MaxBytes(2 * len('{"v":"a"}'))
        )
        store.put("analysis", KEY_A, {"v": "a"})
        store.put("analysis", KEY_B, {"v": "b"})
        assert store.stats.evictions == 0
        store.put("analysis", KEY_C, {"v": "c"})  # over budget: A goes
        assert store.stats.evictions == 1
        store.get("analysis", KEY_A)
        assert store.stats.disk_hits == 1

    def test_composite_policy_on_store(self, any_backend):
        clock = FakeClock()
        store = ArtifactStore(
            backend=any_backend, memory_policy=LRU(2) & TTL(60), clock=clock
        )
        store.put("analysis", KEY_A, {"v": 1})
        store.put("analysis", KEY_B, {"v": 2})
        store.put("analysis", KEY_C, {"v": 3})  # LRU bound: A evicted
        assert store.stats.evictions == 1
        clock.advance(61)  # TTL bound: B and C expire
        store.put("analysis", KEY_A, {"v": 4})
        assert store.stats.evictions == 3
        assert store.get("analysis", KEY_A) == {"v": 4}
        assert store.stats.memory_hits == 1


class TestDiskPolicy:
    def test_maxbytes_bounds_backend(self, any_backend):
        size = len('{"v":"a"}')
        store = ArtifactStore(
            backend=any_backend,
            max_memory_entries=0,
            disk_policy=MaxBytes(2 * size),
        )
        store.put("analysis", KEY_A, {"v": "a"})
        store.put("analysis", KEY_B, {"v": "b"})
        assert store.stats.disk_evictions == 0
        store.put("analysis", KEY_C, {"v": "c"})
        assert store.stats.disk_evictions == 1
        assert store.total_bytes() <= 2 * size
        # The newest artifact always survives its own write.
        assert any_backend.exists("analysis", KEY_C)
        assert len(any_backend.keys("analysis")) == 2

    def test_disk_eviction_does_not_count_as_delete(self, any_backend):
        store = ArtifactStore(
            backend=any_backend, max_memory_entries=0, disk_policy=MaxBytes(0)
        )
        store.put("analysis", KEY_A, {"v": 1})
        assert store.stats.disk_evictions == 1
        assert store.stats.deletes == 0
        assert store.stats.evictions == 0

    def test_ttl_disk_policy_with_shared_clock(self):
        # Time-based disk policies compare the store clock against backend
        # write stamps; sharing one injected clock makes TTL deterministic.
        clock = FakeClock()
        backend = MemoryBackend(clock=clock)
        store = ArtifactStore(
            backend=backend, max_memory_entries=0, disk_policy=TTL(60), clock=clock
        )
        store.put("analysis", KEY_A, {"v": 1})
        clock.advance(61)
        store.put("analysis", KEY_B, {"v": 2})  # the write sweeps: A expires
        assert store.stats.disk_evictions == 1
        assert not backend.exists("analysis", KEY_A)
        assert backend.exists("analysis", KEY_B)

    def test_sweep_disk_is_explicit_and_counts(self):
        clock = FakeClock()
        backend = MemoryBackend(clock=clock)
        store = ArtifactStore(backend=backend, disk_policy=None, clock=clock)
        store.put("analysis", KEY_A, {"v": 1})
        assert store.sweep_disk() == 0  # no policy: a no-op
        store.disk_policy = TTL(60)
        clock.advance(61)
        assert store.sweep_disk() == 1
        assert store.stats.disk_evictions == 1

    def test_no_eviction_memory_policy_is_unbounded(self, any_backend):
        store = ArtifactStore(backend=any_backend, memory_policy=NoEviction())
        for index in range(40):  # far past the default lru:32 bound
            store.put("analysis", f"{index:08x}", {"v": index})
        assert store.stats.evictions == 0
        store.get("analysis", f"{0:08x}")
        assert store.stats.memory_hits == 1  # oldest entry still in memory

    def test_disk_eviction_drops_memory_copy(self, any_backend):
        store = ArtifactStore(backend=any_backend, disk_policy=MaxBytes(0))
        store.put("analysis", KEY_A, {"v": 1})
        # Evicted from the backend and from the memory front with it.
        assert store.get("analysis", KEY_A) is None
        assert store.stats.memory_hits == 0
        assert store.stats.misses == 1
