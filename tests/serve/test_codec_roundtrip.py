"""Property-style round-trip tests: from_dict(to_dict(x)) == x for every artifact.

The full-results fixture exercises every artifact type with realistic values;
the hypothesis tests additionally fuzz the small artifacts whose constructors
accept arbitrary data.  All round-trips go through canonical JSON text (not
just dictionaries) so the tests catch anything JSON cannot represent — numpy
scalars, integer dict keys, tuples — exactly as the disk store would.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.elbow import ElbowAnalysis, ElbowPoint
from repro.cluster.fihc import FIHCResult
from repro.cluster.hierarchy import ClusteringRun
from repro.core.config import AnalysisConfig
from repro.core.table1 import Table1
from repro.distances.pdist import CondensedDistanceMatrix
from repro.errors import ServeError
from repro.features.matrix import FeatureMatrix
from repro.geo.comparison import ClaimCheck, TreeComparison
from repro.mining.itemsets import MiningResult, Pattern
from repro.recipedb.stats import CorpusStatistics
from repro.serve import codec


def json_roundtrip(payload: dict) -> dict:
    """Push a payload through canonical JSON text, as the disk store does."""
    return codec.loads(codec.dumps(payload))


class TestArtifactRoundTrips:
    """Every artifact type reachable from AnalysisResults survives JSON."""

    def test_config(self, full_results):
        config = full_results.config
        assert AnalysisConfig.from_dict(json_roundtrip(config.to_dict())) == config

    def test_corpus_stats(self, full_results):
        stats = full_results.corpus_stats
        assert CorpusStatistics.from_dict(json_roundtrip(stats.to_dict())) == stats

    def test_mining_results(self, full_results):
        for result in full_results.mining_results.values():
            assert MiningResult.from_dict(json_roundtrip(result.to_dict())) == result

    def test_table1(self, full_results):
        table = full_results.table1
        assert Table1.from_dict(json_roundtrip(table.to_dict())) == table

    def test_pattern_features(self, full_results):
        features = full_results.pattern_features
        assert FeatureMatrix.from_dict(json_roundtrip(features.to_dict())) == features

    def test_elbow(self, full_results):
        elbow = full_results.elbow
        assert ElbowAnalysis.from_dict(json_roundtrip(elbow.to_dict())) == elbow

    @pytest.mark.parametrize(
        "figure", ["figure2", "figure3", "figure4", "figure5", "figure6"]
    )
    def test_clustering_runs(self, full_results, figure):
        run = full_results.run_for(figure)
        rebuilt = ClusteringRun.from_dict(json_roundtrip(run.to_dict()))
        assert rebuilt == run
        # The rebuilt dendrogram must behave identically, not just compare equal.
        assert rebuilt.dendrogram.leaf_order() == run.dendrogram.leaf_order()
        assert rebuilt.flat_clusters(3) == run.flat_clusters(3)

    def test_fihc(self, full_results):
        fihc = full_results.fihc
        assert FIHCResult.from_dict(json_roundtrip(fihc.to_dict())) == fihc

    def test_fingerprints(self, full_results):
        from repro.authenticity.fingerprint import CuisineFingerprint

        for fingerprint in full_results.fingerprints.values():
            rebuilt = CuisineFingerprint.from_dict(json_roundtrip(fingerprint.to_dict()))
            assert rebuilt == fingerprint

    def test_tree_comparisons(self, full_results):
        for comparison in full_results.geography_validation.values():
            rebuilt = TreeComparison.from_dict(json_roundtrip(comparison.to_dict()))
            assert rebuilt == comparison
            # JSON stringifies the k keys; they must come back as ints.
            assert all(isinstance(k, int) for k in rebuilt.fowlkes_mallows_by_k)

    def test_claim_checks(self, full_results):
        for checks in full_results.claim_checks.values():
            for check in checks:
                assert ClaimCheck.from_dict(json_roundtrip(check.to_dict())) == check


class TestFullResultsRoundTrip:
    def test_every_field_survives(self, full_results):
        rebuilt = codec.results_from_dict(json_roundtrip(codec.results_to_dict(full_results)))
        assert rebuilt == full_results

    def test_distances_bitwise_identical(self, full_results):
        rebuilt = codec.results_from_dict(json_roundtrip(codec.results_to_dict(full_results)))
        for figure in ("figure2", "figure3", "figure4", "figure5", "figure6"):
            original = full_results.run_for(figure).distances.distances
            restored = rebuilt.run_for(figure).distances.distances
            assert np.array_equal(original, restored)

    def test_canonical_json_is_deterministic(self, full_results):
        first = codec.dumps(codec.results_to_dict(full_results))
        second = codec.dumps(codec.results_to_dict(full_results))
        assert first == second

    def test_schema_version_checked(self, full_results):
        payload = codec.results_to_dict(full_results)
        payload["schema_version"] = 999
        with pytest.raises(ServeError):
            codec.results_from_dict(payload)

    def test_malformed_payload_rejected(self, full_results):
        payload = codec.results_to_dict(full_results)
        del payload["table1"]
        with pytest.raises(ServeError):
            codec.results_from_dict(payload)


class TestCacheKeys:
    def test_identical_configs_share_keys(self):
        first = AnalysisConfig(seed=1, scale=0.02)
        second = AnalysisConfig(seed=1, scale=0.02)
        assert codec.analysis_key(first) == codec.analysis_key(second)
        assert codec.mining_key(first) == codec.mining_key(second)

    @pytest.mark.parametrize(
        "override", [{"seed": 2}, {"scale": 0.03}, {"min_support": 0.25}]
    )
    def test_mining_fields_change_both_keys(self, override):
        base = AnalysisConfig(seed=1, scale=0.02)
        changed = base.with_overrides(**override)
        assert codec.analysis_key(base) != codec.analysis_key(changed)
        assert codec.mining_key(base) != codec.mining_key(changed)

    @pytest.mark.parametrize(
        "override",
        [{"linkage_method": "complete"}, {"elbow_k_max": 9}, {"fingerprint_top_k": 4}],
    )
    def test_clustering_fields_keep_the_mining_key(self, override):
        base = AnalysisConfig(seed=1, scale=0.02)
        changed = base.with_overrides(**override)
        assert codec.analysis_key(base) != codec.analysis_key(changed)
        assert codec.mining_key(base) == codec.mining_key(changed)

    def test_unknown_projection_field_rejected(self):
        with pytest.raises(ServeError):
            codec.config_key(AnalysisConfig(), ("seed", "nonsense"))


# -- hypothesis fuzzing of the small artifacts ---------------------------------------

item_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x24F),
    min_size=1,
    max_size=12,
)
supports = st.floats(min_value=1e-6, max_value=1.0, exclude_min=False)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def patterns(draw):
    items = draw(st.frozensets(item_names, min_size=1, max_size=4))
    return Pattern(
        items=items,
        support=draw(supports),
        absolute_support=draw(st.integers(min_value=1, max_value=10_000)),
    )


@st.composite
def mining_results(draw):
    drawn = draw(st.lists(patterns(), min_size=0, max_size=8))
    return MiningResult(
        drawn,
        n_transactions=draw(st.integers(min_value=0, max_value=100_000)),
        min_support=draw(supports),
        algorithm=draw(st.sampled_from(["fpgrowth", "apriori", "eclat", "unknown"])),
    )


class TestHypothesisRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(pattern=patterns())
    def test_pattern(self, pattern):
        assert Pattern.from_dict(json_roundtrip(pattern.to_dict())) == pattern

    @settings(max_examples=50, deadline=None)
    @given(result=mining_results())
    def test_mining_result(self, result):
        assert MiningResult.from_dict(json_roundtrip(result.to_dict())) == result

    @settings(max_examples=50, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.integers(1, 40), st.floats(0, 1e9, allow_nan=False)),
            min_size=0,
            max_size=10,
        ),
        strength=st.floats(0, 1, allow_nan=False),
        has_elbow=st.booleans(),
    )
    def test_elbow(self, points, strength, has_elbow):
        analysis = ElbowAnalysis(
            points=tuple(ElbowPoint(n_clusters=k, wcss=w) for k, w in points),
            elbow_k=points[0][0] if (has_elbow and points) else None,
            elbow_strength=strength,
        )
        assert ElbowAnalysis.from_dict(json_roundtrip(analysis.to_dict())) == analysis

    @settings(max_examples=50, deadline=None)
    @given(
        labels=st.lists(item_names, min_size=1, max_size=8, unique=True),
        metric=st.sampled_from(["euclidean", "cosine", "jaccard", "precomputed"]),
        data=st.data(),
    )
    def test_condensed_matrix(self, labels, metric, data):
        n = len(labels)
        distances = np.asarray(
            data.draw(
                st.lists(
                    st.floats(0, 1e6, allow_nan=False),
                    min_size=n * (n - 1) // 2,
                    max_size=n * (n - 1) // 2,
                )
            ),
            dtype=np.float64,
        )
        matrix = CondensedDistanceMatrix(tuple(labels), distances, metric=metric)
        rebuilt = CondensedDistanceMatrix.from_dict(json_roundtrip(matrix.to_dict()))
        assert rebuilt == matrix

    @settings(max_examples=50, deadline=None)
    @given(
        gamma=st.floats(-1, 1, allow_nan=False),
        ks=st.dictionaries(st.integers(2, 12), st.floats(0, 1, allow_nan=False), max_size=5),
    )
    def test_tree_comparison(self, gamma, ks):
        comparison = TreeComparison(
            bakers_gamma=gamma, fowlkes_mallows_by_k=dict(ks), adjusted_rand_by_k=dict(ks)
        )
        rebuilt = TreeComparison.from_dict(json_roundtrip(comparison.to_dict()))
        assert rebuilt == comparison

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=9))
    def test_json_floats_are_exact(self, values):
        """The codec's losslessness rests on JSON round-tripping doubles."""
        array = np.asarray(values, dtype=np.float64)
        restored = codec.loads(codec.dumps({"values": array.tolist()}))["values"]
        assert all(
            math.isclose(a, b, rel_tol=0, abs_tol=0)
            for a, b in zip(array.tolist(), restored)
        )
