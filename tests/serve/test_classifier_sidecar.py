"""Classifier sidecar: byte-identical scores, zero-compile warm path, fallback.

Three property suites (Hypothesis) plus deterministic service-level tests:

* ``top_k(k)`` always equals the first k entries of the full ``ranked()``
  output, for random classifiers, recipes and weights;
* a sidecar-loaded classifier scores **byte-identically** to the fresh
  compile it was saved from (both hold the same float32/bitset arrays and
  run the same arithmetic);
* corrupt or stale sidecars raise :class:`SidecarError` on load, and the
  service falls back to a rebuild (counted as a compile, never an error).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import AnalysisConfig
from repro.errors import SidecarError
from repro.serve.backends import MemoryBackend
from repro.serve.classify import (
    CuisineClassifier,
    classifier_sidecar_paths,
    rank_scores,
)
from repro.serve.service import AnalysisService
from repro.serve.store import ArtifactStore

CONFIG = AnalysisConfig(seed=17, scale=0.02, elbow_k_max=6)


def synthetic_classifier(
    seed: int, pattern_weight: float = 1.0, authenticity_weight: float = 1.0
) -> CuisineClassifier:
    """A random but structurally valid classifier (no pipeline involved)."""
    rng = np.random.default_rng(seed)
    n_cuisines = int(rng.integers(2, 6))
    n_items = int(rng.integers(5, 40))
    n_patterns = int(rng.integers(1, 30))
    cuisines = tuple(f"Cuisine{chr(65 + i)}" for i in range(n_cuisines))
    vocabulary = tuple(f"item{i:02d}" for i in range(n_items))
    pattern_items = rng.random((n_patterns, n_items)) < 0.2
    supports = (
        rng.random((n_patterns, n_cuisines))
        * (rng.random((n_patterns, n_cuisines)) < 0.5)
    ).astype(np.float32)
    authenticity = (
        rng.normal(size=(n_items, n_cuisines))
        * (rng.random((n_items, n_cuisines)) < 0.5)
    ).astype(np.float32)
    return CuisineClassifier(
        cuisines,
        vocabulary,
        pattern_items,
        supports,
        authenticity,
        pattern_weight=pattern_weight,
        authenticity_weight=authenticity_weight,
    )


def random_recipes(seed: int, vocabulary: tuple[str, ...], n: int) -> list[list[str]]:
    """Random ingredient lists: known items plus the odd unknown token."""
    rng = np.random.default_rng(seed + 1)
    recipes = []
    for _ in range(n):
        size = int(rng.integers(0, min(8, len(vocabulary)) + 1))
        chosen = rng.choice(len(vocabulary), size=size, replace=False)
        recipe = [vocabulary[i] for i in chosen]
        if rng.random() < 0.3:
            recipe.append(f"unknown{int(rng.integers(0, 5))}")
        recipes.append(recipe)
    return recipes


class TestTopKProperty:
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 8),
        pattern_weight=st.floats(0.0, 4.0),
        authenticity_weight=st.floats(0.1, 4.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_top_k_is_prefix_of_full_ranking(
        self, seed, k, pattern_weight, authenticity_weight
    ):
        classifier = synthetic_classifier(
            seed, pattern_weight=pattern_weight, authenticity_weight=authenticity_weight
        )
        recipes = random_recipes(seed, classifier.vocabulary, 5)
        full = classifier.classify_batch(recipes)
        trimmed = classifier.classify_batch(recipes, top_k=k)
        for complete, top in zip(full, trimmed):
            expected = complete.ranked()[: min(k, len(classifier.cuisines))]
            # Same floats, same order: the trimmed call runs the identical
            # arithmetic, it just materialises fewer cuisines.
            assert top.ranked() == expected
            assert list(top.scores.items()) == expected
            assert top.best == complete.best
            assert complete.top_k(k) == expected
            assert top.matched_patterns == complete.matched_patterns
            assert top.unknown_items == complete.unknown_items

    def test_rank_scores_helper_is_the_single_tie_rule(self):
        scores = {"B": 1.0, "A": 1.0, "C": 2.0}
        assert rank_scores(scores) == [("C", 2.0), ("A", 1.0), ("B", 1.0)]
        assert rank_scores(scores, 2) == [("C", 2.0), ("A", 1.0)]


class TestSidecarRoundTrip:
    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_loaded_scores_byte_identical(self, seed, tmp_path):
        fresh = synthetic_classifier(seed)
        prefix = tmp_path / f"s{seed}" / "corpus-x.classifier"
        fresh.save(prefix, fingerprint=f"fp{seed}")
        loaded = CuisineClassifier.load(prefix, expected_fingerprint=f"fp{seed}")
        assert loaded.cuisines == fresh.cuisines
        assert loaded.vocabulary == fresh.vocabulary
        recipes = random_recipes(seed, fresh.vocabulary, 6)
        for a, b in zip(
            fresh.classify_batch(recipes), loaded.classify_batch(recipes)
        ):
            # Bit-for-bit equality, not approx: both classifiers hold the
            # same float32/bitset arrays and run the same arithmetic.
            assert a == b

    @given(
        seed=st.integers(0, 10_000),
        corruption=st.sampled_from(
            ["missing", "garbage_meta", "bad_version", "stale", "truncated"]
        ),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_corrupt_or_stale_sidecars_raise(self, seed, corruption, tmp_path):
        classifier = synthetic_classifier(seed)
        prefix = tmp_path / f"c{seed}-{corruption}" / "corpus-x.classifier"
        classifier.save(prefix, fingerprint="fp")
        paths = classifier_sidecar_paths(prefix)
        expected = "fp"
        if corruption == "missing":
            paths["meta"].unlink()
        elif corruption == "garbage_meta":
            paths["meta"].write_text("{not json", encoding="utf-8")
        elif corruption == "bad_version":
            meta = json.loads(paths["meta"].read_text(encoding="utf-8"))
            meta["version"] = 999
            paths["meta"].write_text(json.dumps(meta), encoding="utf-8")
        elif corruption == "stale":
            expected = "a-different-corpus"
        elif corruption == "truncated":
            paths["patterns"].write_bytes(
                paths["patterns"].read_bytes()[:16]
            )
        with pytest.raises(SidecarError):
            CuisineClassifier.load(prefix, expected_fingerprint=expected)

    def test_set_pad_bits_detected(self, tmp_path):
        # 10 items -> 2 bit-words per pattern, 6 pad bits in the last byte.
        rng = np.random.default_rng(3)
        classifier = CuisineClassifier(
            ("A", "B"),
            tuple(f"i{k}" for k in range(10)),
            rng.random((4, 10)) < 0.5,
            rng.random((4, 2)).astype(np.float32),
            rng.random((10, 2)).astype(np.float32),
        )
        prefix = tmp_path / "corpus-x.classifier"
        classifier.save(prefix, fingerprint="fp")
        paths = classifier_sidecar_paths(prefix)
        bits = np.load(paths["patterns"]).copy()
        bits[0, -1] |= 0x01  # a bit beyond the vocabulary
        np.save(paths["patterns"], bits)
        with pytest.raises(SidecarError, match="pad bits"):
            CuisineClassifier.load(prefix, expected_fingerprint="fp")

    def test_shape_mismatch_detected(self, tmp_path):
        classifier = synthetic_classifier(5)
        prefix = tmp_path / "corpus-x.classifier"
        classifier.save(prefix, fingerprint="fp")
        paths = classifier_sidecar_paths(prefix)
        np.save(paths["supports"], np.zeros((1, 1), dtype=np.float32))
        with pytest.raises(SidecarError, match="inconsistent"):
            CuisineClassifier.load(prefix, expected_fingerprint="fp")


class TestServiceWarmPath:
    def test_warm_classifier_builds_zero_matrices(self, tmp_path, monkeypatch):
        cold = AnalysisService(tmp_path / "cache")
        served = cold.get_or_run(CONFIG)
        first = cold.classifier_for(CONFIG, results=served.results)
        assert cold.store.stats.classifier_compiles == 1
        assert cold.store.stats.classifier_sidecar_loads == 0

        warm = AnalysisService(tmp_path / "cache")
        # The warm path must never touch the dense compiler at all.
        monkeypatch.setattr(
            CuisineClassifier,
            "from_results",
            classmethod(
                lambda *a, **k: pytest.fail("warm path compiled dense matrices")
            ),
        )
        second = warm.classifier_for(CONFIG)
        assert warm.store.stats.classifier_compiles == 0
        assert warm.store.stats.classifier_sidecar_loads == 1
        recipes = [list(first.vocabulary[:5]), ["nope"], []]
        for a, b in zip(
            first.classify_batch(recipes), second.classify_batch(recipes)
        ):
            assert a == b  # byte-identical scores, sidecar vs fresh compile

    def test_memory_cache_returns_same_object(self, tmp_path):
        service = AnalysisService(tmp_path / "cache")
        served = service.get_or_run(CONFIG)
        first = service.classifier_for(CONFIG, results=served.results)
        assert service.classifier_for(CONFIG) is first
        assert service.store.stats.classifier_sidecar_loads == 0

    def test_weight_variants_share_one_sidecar(self, tmp_path):
        service = AnalysisService(tmp_path / "cache")
        served = service.get_or_run(CONFIG)
        service.classifier_for(CONFIG, results=served.results)
        reweighted = service.classifier_for(CONFIG, pattern_weight=2.0)
        # Weights are scoring-time scalars, not sidecar contents: the second
        # variant memory-maps the same files instead of recompiling.
        assert reweighted.pattern_weight == 2.0
        assert service.store.stats.classifier_compiles == 1
        assert service.store.stats.classifier_sidecar_loads == 1

    def test_corrupt_sidecar_falls_back_to_rebuild(self, tmp_path):
        cold = AnalysisService(tmp_path / "cache")
        cold.get_or_run(CONFIG)
        cold.classifier_for(CONFIG)
        paths = classifier_sidecar_paths(cold.classifier_path(CONFIG))
        paths["patterns"].write_bytes(b"garbage")

        warm = AnalysisService(tmp_path / "cache")
        classifier = warm.classifier_for(CONFIG)
        assert classifier.cuisines  # served despite the corrupt sidecar
        assert warm.store.stats.classifier_compiles == 1
        assert warm.store.stats.classifier_sidecar_loads == 0
        # The rebuild re-persisted the sidecar: a third service loads it.
        third = AnalysisService(tmp_path / "cache")
        third.classifier_for(CONFIG)
        assert third.store.stats.classifier_sidecar_loads == 1

    def test_stale_sidecar_falls_back_to_rebuild(self, tmp_path):
        cold = AnalysisService(tmp_path / "cache")
        cold.get_or_run(CONFIG)
        cold.classifier_for(CONFIG)
        paths = classifier_sidecar_paths(cold.classifier_path(CONFIG))
        meta = json.loads(paths["meta"].read_text(encoding="utf-8"))
        meta["fingerprint"] = "some-older-corpus"
        paths["meta"].write_text(json.dumps(meta), encoding="utf-8")

        warm = AnalysisService(tmp_path / "cache")
        warm.classifier_for(CONFIG)
        assert warm.store.stats.classifier_compiles == 1
        assert warm.store.stats.classifier_sidecar_loads == 0

    def test_rootless_backend_compiles_in_memory(self, full_results):
        # A rootless backend has nowhere for corpora or sidecars; classify
        # must still serve, compiling in memory from the supplied results.
        service = AnalysisService(ArtifactStore(backend=MemoryBackend()))
        classifier = service.classifier_for(CONFIG, results=full_results)
        assert classifier.cuisines
        assert service.store.stats.classifier_compiles == 1
        # Cached in memory even without a sidecar home.
        assert service.classifier_for(CONFIG) is classifier

    def test_describe_surfaces_classifier_counters(self, tmp_path):
        service = AnalysisService(tmp_path / "cache")
        served = service.get_or_run(CONFIG)
        service.classifier_for(CONFIG, results=served.results)
        payload = service.describe()
        assert payload["classifier"] == {
            "cached": 1,
            "compiles": 1,
            "sidecar_loads": 0,
        }
        assert payload["counters"]["classifier_compiles"] == 1
