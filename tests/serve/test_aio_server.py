"""HTTP/JSON front-door tests for :class:`repro.serve.aio.AnalysisServer`.

Raw-socket clients (``asyncio.open_connection``) drive the stdlib HTTP loop
end to end against a real warmed cache: health, stats, analyze provenance,
every query op, classification, and the error surface (bad JSON, unknown
routes and ops, wrong methods, invalid config fields).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import AnalysisConfig
from repro.serve.aio import AnalysisServer, AsyncAnalysisService
from repro.serve.service import AnalysisService

CONFIG = AnalysisConfig(seed=5, scale=0.02)
CONFIG_JSON = {"seed": 5, "scale": 0.02}


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    cache = tmp_path_factory.mktemp("aio-server") / "cache"
    AnalysisService(cache).get_or_run(CONFIG)
    return cache


async def request(host, port, method, path, payload=None):
    """One one-shot HTTP exchange; returns (status, decoded JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    status = int(head_part.split()[1])
    return status, json.loads(body_part)


def serve(warm_cache, scenario):
    """Run *scenario(host, port)* against a live server over the warm cache."""

    async def main():
        service = AsyncAnalysisService(AnalysisService(warm_cache))
        server = AnalysisServer(service)
        try:
            host, port = await server.start()
            return await scenario(host, port)
        finally:
            await server.aclose()

    return asyncio.run(main())


class TestRoutes:
    def test_healthz(self, warm_cache):
        async def scenario(host, port):
            return await request(host, port, "GET", "/healthz")

        status, payload = serve(warm_cache, scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["inflight"] == 0

    def test_stats_reports_policies_and_counters(self, warm_cache):
        async def scenario(host, port):
            return await request(host, port, "GET", "/stats")

        status, payload = serve(warm_cache, scenario)
        assert status == 200
        assert payload["eviction"].startswith("lru:")
        assert payload["refresh"] == "none"
        assert payload["artifacts"]["analyses"] >= 1
        assert "coalesced_hits" in payload["counters"]
        assert payload["inflight"] == 0

    def test_analyze_serves_cached_analysis(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/analyze", {"config": CONFIG_JSON}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 200
        assert payload["served"]["source"] in ("memory", "disk")
        assert payload["served"]["coalesced"] is False
        assert payload["summary"]["n_regions"] >= 2

    def test_query_nearest(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host,
                port,
                "POST",
                "/query",
                {"config": CONFIG_JSON, "op": "nearest", "cuisine": "Japanese", "k": 3},
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 200
        assert len(payload["nearest"]) == 3
        assert {"cuisine", "distance"} <= set(payload["nearest"][0])

    def test_query_patterns_and_top_patterns(self, warm_cache):
        async def scenario(host, port):
            patterns = await request(
                host,
                port,
                "POST",
                "/query",
                {"config": CONFIG_JSON, "op": "patterns", "items": ["rice"], "limit": 4},
            )
            top = await request(
                host,
                port,
                "POST",
                "/query",
                {"config": CONFIG_JSON, "op": "top-patterns", "cuisine": "Japanese"},
            )
            return patterns, top

        (p_status, p_payload), (t_status, t_payload) = serve(warm_cache, scenario)
        assert p_status == 200 and t_status == 200
        assert len(p_payload["patterns"]) <= 4
        assert all("rice" in hit["pattern"] for hit in p_payload["patterns"])
        assert t_payload["patterns"], "warmed cache should have Japanese patterns"

    def test_query_authenticity_and_cuisine_card(self, warm_cache):
        async def scenario(host, port):
            auth = await request(
                host,
                port,
                "POST",
                "/query",
                {"config": CONFIG_JSON, "op": "authenticity", "item": "soy sauce"},
            )
            card = await request(
                host,
                port,
                "POST",
                "/query",
                {"config": CONFIG_JSON, "op": "cuisine", "cuisine": "Japanese", "k": 2},
            )
            return auth, card

        (a_status, a_payload), (c_status, c_payload) = serve(warm_cache, scenario)
        assert a_status == 200 and c_status == 200
        assert a_payload["authenticity"]
        assert c_payload["cuisine"]["cuisine"] == "Japanese"

    def test_classify(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host,
                port,
                "POST",
                "/classify",
                {
                    "config": CONFIG_JSON,
                    "recipes": [["soy sauce", "rice"], "garlic, olive oil"],
                    "top": 2,
                },
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 200
        assert len(payload["classifications"]) == 2
        first = payload["classifications"][0]
        assert first["best"]
        assert len(first["ranked"]) == 2

    def test_concurrent_http_requests_coalesce(self, tmp_path):
        """Cold cache + parallel HTTP clients: one compute behind the server."""
        service = AnalysisService(tmp_path / "cache")

        async def main():
            async_service = AsyncAnalysisService(service)
            server = AnalysisServer(async_service)
            try:
                host, port = await server.start()
                return await asyncio.gather(
                    *(
                        request(host, port, "POST", "/analyze", {"config": CONFIG_JSON})
                        for _ in range(6)
                    )
                )
            finally:
                await server.aclose()

        responses = asyncio.run(main())
        assert all(status == 200 for status, _ in responses)
        computed = [p for _, p in responses if p["served"]["source"] == "computed"]
        assert computed, "someone must have carried the compute"
        assert service.store.stats.coalesced_hits >= 1
        assert sum(p["served"]["coalesced"] for _, p in responses) >= 1


class TestErrorSurface:
    def test_unknown_route_is_404(self, warm_cache):
        async def scenario(host, port):
            return await request(host, port, "GET", "/nope")

        status, payload = serve(warm_cache, scenario)
        assert status == 404
        assert "unknown route" in payload["error"]

    def test_wrong_method_is_405(self, warm_cache):
        async def scenario(host, port):
            return await request(host, port, "GET", "/analyze")

        status, payload = serve(warm_cache, scenario)
        assert status == 405
        assert "POST" in payload["error"]

    def test_bad_json_body_is_400(self, warm_cache):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            writer.write(
                b"POST /analyze HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body)
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split()[1])

        assert serve(warm_cache, scenario) == 400

    def test_unknown_config_field_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/analyze", {"config": {"warp_factor": 9}}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "warp_factor" in payload["error"]

    def test_invalid_config_value_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/analyze", {"config": {"scale": -1}}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "scale" in payload["error"]

    def test_unknown_query_op_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query", {"config": CONFIG_JSON, "op": "teleport"}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "unknown query op" in payload["error"]

    def test_missing_query_field_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query", {"config": CONFIG_JSON, "op": "nearest"}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "cuisine" in payload["error"]

    def test_empty_classify_batch_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/classify", {"config": CONFIG_JSON, "recipes": []}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "recipes" in payload["error"]

    def test_request_limit_stops_the_server(self, warm_cache):
        async def main():
            service = AsyncAnalysisService(AnalysisService(warm_cache))
            server = AnalysisServer(service, request_limit=2)
            try:
                host, port = await server.start()
                await request(host, port, "GET", "/healthz")
                await request(host, port, "GET", "/healthz")
                await asyncio.wait_for(server.serve_until_done(), timeout=5)
                return server.requests_served
            finally:
                await server.aclose()

        assert asyncio.run(main()) == 2

    def test_wrong_typed_config_value_is_400_not_500(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/analyze", {"config": {"scale": "0.1"}}
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "config" in payload["error"] or "invalid" in payload["error"]

    def test_string_distance_metrics_is_400(self, warm_cache):
        async def scenario(host, port):
            return await request(
                host,
                port,
                "POST",
                "/analyze",
                {"config": {"distance_metrics": "euclidean"}},
            )

        status, payload = serve(warm_cache, scenario)
        assert status == 400
        assert "distance_metrics" in payload["error"]


# -- keep-alive wire behaviour --------------------------------------------------------


def _frame(method, path, payload=None, connection=None, version="HTTP/1.1"):
    """One Content-Length-framed request, ready to write on a live socket."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = f"{method} {path} {version}\r\nHost: test\r\nContent-Length: {len(body)}\r\n"
    if connection is not None:
        head += f"Connection: {connection}\r\n"
    return head.encode("latin-1") + b"\r\n" + body


async def _read_framed(reader):
    """One framed response: ``(status, headers, json body)`` -- no EOF needed."""
    raw_head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=10)
    lines = raw_head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if _:
            headers[name.strip().lower()] = value.strip()
    body = await asyncio.wait_for(
        reader.readexactly(int(headers["content-length"])), timeout=10
    )
    return status, headers, json.loads(body)


class TestKeepAlive:
    def test_many_requests_ride_one_connection(self, warm_cache):
        """HTTP/1.1 default: >= 8 framed requests served on a single socket."""

        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            exchanges = []
            for _ in range(8):
                writer.write(_frame("GET", "/healthz"))
                await writer.drain()
                exchanges.append(await _read_framed(reader))
            writer.close()
            await writer.wait_closed()
            return exchanges

        exchanges = serve(warm_cache, scenario)
        assert len(exchanges) == 8
        for status, headers, payload in exchanges:
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert payload["status"] == "ok"

    def test_interleaved_analyze_and_stats_share_a_socket(self, warm_cache):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            exchanges = []
            for _ in range(4):
                writer.write(
                    _frame("POST", "/analyze", {"config": CONFIG_JSON})
                )
                await writer.drain()
                exchanges.append(await _read_framed(reader))
                writer.write(_frame("GET", "/stats"))
                await writer.drain()
                exchanges.append(await _read_framed(reader))
            writer.close()
            await writer.wait_closed()
            return exchanges

        exchanges = serve(warm_cache, scenario)
        assert [status for status, _, _ in exchanges] == [200] * 8
        analyses = exchanges[0::2]
        stats = exchanges[1::2]
        assert all(p["served"]["source"] in ("memory", "disk") for _, _, p in analyses)
        assert all("counters" in p for _, _, p in stats)

    def test_connection_close_is_honoured(self, warm_cache):
        """An explicit ``Connection: close`` tears the socket down afterwards."""

        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_frame("GET", "/healthz", connection="close"))
            await writer.drain()
            status, headers, _ = await _read_framed(reader)
            trailing = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            await writer.wait_closed()
            return status, headers, trailing

        status, headers, trailing = serve(warm_cache, scenario)
        assert status == 200
        assert headers["connection"] == "close"
        assert trailing == b""  # server closed; nothing rides the socket after

    def test_http_1_0_defaults_to_close(self, warm_cache):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_frame("GET", "/healthz", version="HTTP/1.0"))
            await writer.drain()
            status, headers, _ = await _read_framed(reader)
            trailing = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            await writer.wait_closed()
            return status, headers, trailing

        status, headers, trailing = serve(warm_cache, scenario)
        assert status == 200
        assert headers["connection"] == "close"
        assert trailing == b""

    def test_oversized_body_is_413_and_closes_mid_stream(self, warm_cache):
        """A huge Content-Length is refused before the body and ends the session."""

        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            # Keep-alive request first: proves the same socket was persistent.
            writer.write(_frame("GET", "/healthz"))
            await writer.drain()
            first_status, _, _ = await _read_framed(reader)
            head = (
                "POST /analyze HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {5 * 1024 * 1024}\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))  # never sends the body
            await writer.drain()
            status, headers, payload = await _read_framed(reader)
            trailing = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            await writer.wait_closed()
            return first_status, status, headers, payload, trailing

        first_status, status, headers, payload, trailing = serve(warm_cache, scenario)
        assert first_status == 200
        assert status == 413
        assert headers["connection"] == "close"
        assert "too large" in payload["error"]
        assert trailing == b""  # framing is void after an error: server closed
