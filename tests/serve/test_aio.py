"""Async front-end tests: coalescing, cancellation safety, background refresh.

The concurrency semantics (single flight per key, shielded flights, refresh
serves old until new is ready) run against a lightweight stub service so the
timing-sensitive interleavings are controlled by explicit gates; one
end-to-end test drives the real :class:`AnalysisService` to prove the
acceptance property: 16 simultaneous cold requests perform exactly one
compute and every awaiter receives equal results.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.config import AnalysisConfig, DEFAULT_CONFIG
from repro.errors import ServeError
from repro.serve import codec
from repro.serve.aio import AsyncAnalysisService, AsyncQueryEngine
from repro.serve.backends import MemoryBackend
from repro.serve.queries import QueryEngine
from repro.serve.service import ANALYSIS_KIND, AnalysisService, ServedAnalysis
from repro.serve.store import ArtifactStore

CONFIG = AnalysisConfig(seed=5, scale=0.02)
OTHER_CONFIG = AnalysisConfig(seed=6, scale=0.02)


def run(coro):
    """Drive one async test body (no pytest-asyncio dependency)."""
    return asyncio.run(coro)


class StubService:
    """Duck-typed AnalysisService: countable, gateable computes over a real store.

    ``get_or_run`` and ``refresh`` produce :class:`ServedAnalysis` objects
    whose ``results`` payload is ``(tag, version)`` -- enough to assert
    identity/equality without paying for a real pipeline run.
    """

    def __init__(self, tmp_path, *, delay: float = 0.0):
        self.store = ArtifactStore(backend=MemoryBackend(root=tmp_path / "cache"))
        self.delay = delay
        self.compute_gate: threading.Event | None = None
        self.refresh_gate: threading.Event | None = None
        self.computes = 0
        self.refreshes = 0
        self.version = "old"
        self._lock = threading.Lock()

    # -- AnalysisService surface used by the front-end --------------------------------

    def get_or_run(self, config=None, *, database=None) -> ServedAnalysis:
        with self._lock:
            self.computes += 1
        if self.compute_gate is not None:
            assert self.compute_gate.wait(10), "compute gate never released"
        if self.delay:
            time.sleep(self.delay)
        return self._serve("computed")

    def refresh(self, config=None) -> ServedAnalysis:
        with self._lock:
            self.refreshes += 1
        if self.refresh_gate is not None:
            assert self.refresh_gate.wait(10), "refresh gate never released"
        self.version = "new"
        key = codec.analysis_key(config if config is not None else DEFAULT_CONFIG)
        self.store.put(ANALYSIS_KIND, key, {"version": self.version})
        return self._serve("computed")

    def stats(self):
        return self.store.stats.to_dict()

    def describe(self):
        return {"counters": self.stats()}

    def _serve(self, source: str) -> ServedAnalysis:
        return ServedAnalysis(
            results=("results", self.version),
            source=source,
            key=codec.analysis_key(CONFIG),
            elapsed_seconds=0.0,
        )

    def seed_artifact(self, config) -> str:
        """Persist a (stub) analysis artifact so the refresher sees a stamp."""
        key = codec.analysis_key(config)
        self.store.put(ANALYSIS_KIND, key, {"version": self.version})
        return key


class TestCoalescing:
    def test_sixteen_concurrent_cold_requests_one_compute(self, tmp_path):
        service = StubService(tmp_path, delay=0.05)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                return await asyncio.gather(*(svc.get(CONFIG) for _ in range(16)))

        served = run(scenario())
        assert service.computes == 1
        assert len(served) == 16
        # Everyone got the same flight's results.
        assert all(s.results is served[0].results for s in served)
        assert sum(s.coalesced for s in served) == 15
        assert service.store.stats.coalesced_hits == 15

    def test_distinct_configs_fly_separately(self, tmp_path):
        service = StubService(tmp_path, delay=0.02)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                return await asyncio.gather(svc.get(CONFIG), svc.get(OTHER_CONFIG))

        run(scenario())
        assert service.computes == 2
        assert service.store.stats.coalesced_hits == 0

    def test_sequential_requests_do_not_coalesce(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                first = await svc.get(CONFIG)
                second = await svc.get(CONFIG)
                return first, second

        first, second = run(scenario())
        assert service.computes == 2  # the stub has no cache; two flights ran
        assert not first.coalesced and not second.coalesced
        assert service.store.stats.coalesced_hits == 0

    def test_inflight_gauge_tracks_flights(self, tmp_path):
        service = StubService(tmp_path)
        service.compute_gate = threading.Event()

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                waiter = asyncio.ensure_future(svc.get(CONFIG))
                await asyncio.sleep(0.05)
                inflight_during = svc.inflight
                assert svc.stats()["inflight"] == 1
                service.compute_gate.set()
                await waiter
                return inflight_during, svc.inflight

        during, after = run(scenario())
        assert during == 1
        assert after == 0

    def test_closed_service_rejects_reads(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            svc = AsyncAnalysisService(service)
            await svc.aclose()
            with pytest.raises(ServeError):
                await svc.get(CONFIG)

        run(scenario())


class TestCancellation:
    def test_cancelled_waiter_does_not_cancel_shared_flight(self, tmp_path):
        service = StubService(tmp_path)
        service.compute_gate = threading.Event()

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                first = asyncio.ensure_future(svc.get(CONFIG))
                await asyncio.sleep(0.05)  # let the flight take off
                second = asyncio.ensure_future(svc.get(CONFIG))
                await asyncio.sleep(0.05)  # let the second waiter join it
                second.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await second
                service.compute_gate.set()
                return await first

        served = run(scenario())
        assert served.results == ("results", "old")
        assert service.computes == 1  # one flight, despite the cancelled joiner
        assert service.store.stats.coalesced_hits == 1

    def test_flight_survives_all_waiters_cancelled(self, tmp_path):
        service = StubService(tmp_path)
        service.compute_gate = threading.Event()

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                only = asyncio.ensure_future(svc.get(CONFIG))
                await asyncio.sleep(0.05)
                only.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await only
                assert svc.inflight == 1  # the compute itself is still running
                service.compute_gate.set()
                for _ in range(100):
                    if svc.inflight == 0:
                        break
                    await asyncio.sleep(0.02)
                return svc.inflight

        assert run(scenario()) == 0
        assert service.computes == 1


class TestBackgroundRefresh:
    def test_refresh_serves_old_until_new_is_ready(self, tmp_path):
        service = StubService(tmp_path)
        service.refresh_gate = threading.Event()

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:0.0001") as svc:
                key = service.seed_artifact(CONFIG)
                await svc.get(CONFIG)  # make the config known to the refresher
                service.computes = 0
                await asyncio.sleep(0.01)  # let the seeded artifact age past the TTL
                sweep = asyncio.ensure_future(svc.refresh_once())
                await asyncio.sleep(0.05)  # refresh is now blocked on its gate
                assert svc.refreshing == 1
                old = await svc.get(CONFIG)
                assert old.results == ("results", "old")  # old keeps serving
                service.refresh_gate.set()
                refreshed = await sweep
                assert refreshed == [key]
                new = await svc.get(CONFIG)
                return new

        new = run(scenario())
        assert new.results == ("results", "new")
        assert service.refreshes == 1
        assert service.store.stats.background_refreshes == 1

    def test_fresh_artifact_is_not_refreshed(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:3600") as svc:
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                return await svc.refresh_once()

        assert run(scenario()) == []
        assert service.refreshes == 0
        assert service.store.stats.background_refreshes == 0

    def test_refresh_lead_rewarms_before_expiry(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            svc = AsyncAnalysisService(
                service, refresh_policy="ttl:3600", refresh_lead=7200
            )
            async with svc:
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                # The artifact is far from expiring, but the lead window
                # (policy evaluated at now + lead) re-warms it early.
                return await svc.refresh_once()

        assert len(run(scenario())) == 1
        assert service.store.stats.background_refreshes == 1

    def test_refresh_skips_keys_with_a_flight_inflight(self, tmp_path):
        service = StubService(tmp_path)
        service.compute_gate = threading.Event()

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:0.0001") as svc:
                service.seed_artifact(CONFIG)
                svc._known[codec.analysis_key(CONFIG)] = CONFIG
                waiter = asyncio.ensure_future(svc.get(CONFIG))
                await asyncio.sleep(0.05)
                refreshed = await svc.refresh_once()
                service.compute_gate.set()
                await waiter
                return refreshed

        assert run(scenario()) == []
        assert service.refreshes == 0

    def test_refresher_task_sweeps_periodically(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            svc = AsyncAnalysisService(
                service, refresh_policy="ttl:0.0001", refresh_interval=0.02
            )
            async with svc:  # __aenter__ starts the refresher task
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                for _ in range(100):
                    if service.store.stats.background_refreshes:
                        break
                    await asyncio.sleep(0.02)
                return service.store.stats.background_refreshes

        assert run(scenario()) >= 1

    def test_no_policy_means_no_refresher(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                assert await svc.refresh_once() == []
                return svc._refresher

        assert run(scenario()) is None
        assert service.refreshes == 0

    def test_refresh_failure_is_counted_not_raised(self, tmp_path):
        service = StubService(tmp_path)

        def failing_refresh(config=None):
            raise ServeError("backend went away")

        service.refresh = failing_refresh

        async def scenario():
            async with AsyncAnalysisService(service, refresh_policy="ttl:0.0001") as svc:
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                await asyncio.sleep(0.01)
                return await svc.refresh_once(), svc.refresh_errors

        refreshed, errors = run(scenario())
        assert refreshed == []
        assert errors == 1
        assert service.store.stats.background_refreshes == 0


class TestValidation:
    def test_bad_parameters_are_rejected(self, tmp_path):
        service = StubService(tmp_path)
        with pytest.raises(ServeError):
            AsyncAnalysisService(service, max_threads=0)
        with pytest.raises(ServeError):
            AsyncAnalysisService(service, refresh_interval=0)
        with pytest.raises(ServeError):
            AsyncAnalysisService(service, refresh_lead=-1)

    def test_refresh_policy_spec_string_round_trips(self, tmp_path):
        service = StubService(tmp_path)
        svc = AsyncAnalysisService(service, refresh_policy="ttl:600")
        assert svc.refresh_policy.describe() == "ttl:600"
        assert svc.describe()["refresh"] == "ttl:600"

    def test_describe_includes_gauges(self, tmp_path):
        service = StubService(tmp_path)
        svc = AsyncAnalysisService(service)
        payload = svc.describe()
        assert payload["refresh"] == "none"
        assert payload["inflight"] == 0
        assert payload["refreshing"] == 0


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A real cache warmed once for the end-to-end tests."""
    cache = tmp_path_factory.mktemp("aio") / "cache"
    AnalysisService(cache).get_or_run(CONFIG)
    return cache


class TestRealService:
    def test_sixteen_cold_requests_one_real_compute_equal_results(self, tmp_path):
        service = AnalysisService(tmp_path / "cache")
        computes = []
        original = AnalysisService._compute

        def counting_compute(self, config):
            computes.append(codec.analysis_key(config))
            return original(self, config)

        AnalysisService._compute = counting_compute
        try:

            async def scenario():
                async with AsyncAnalysisService(service) as svc:
                    return await asyncio.gather(
                        *(svc.get(CONFIG) for _ in range(16))
                    )

            served = run(scenario())
        finally:
            AnalysisService._compute = original
        assert len(computes) == 1
        assert all(s.results == served[0].results for s in served)
        assert sum(s.coalesced for s in served) == 15

    def test_warm_cache_serves_without_compute(self, warm_cache):
        service = AnalysisService(warm_cache)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                return await svc.get(CONFIG)

        served = run(scenario())
        assert served.source in ("memory", "disk")
        assert not served.coalesced

    def test_async_warm_coalesces_duplicate_configs(self, tmp_path):
        service = AnalysisService(tmp_path / "cache")

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                return await svc.warm([CONFIG, CONFIG, CONFIG])

        served = run(scenario())
        assert len(served) == 3
        assert sum(s.coalesced for s in served) == 2

    def test_async_query_engine_matches_sync_reads(self, warm_cache):
        service = AnalysisService(warm_cache)
        sync_engine = QueryEngine(service.get_or_run(CONFIG).results)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                engine = AsyncQueryEngine(svc, CONFIG)
                nearest = await engine.nearest_cuisines("Japanese", k=3)
                hits = await engine.top_patterns("Japanese", k=2)
                profile = await engine.cuisine_profile("Japanese", k=2)
                labels = await engine.classify([["soy sauce", "rice"]])
                return nearest, hits, profile, labels

        nearest, hits, profile, labels = run(scenario())
        assert nearest == sync_engine.nearest_cuisines("Japanese", k=3)
        assert [h.to_dict() for h in hits] == [
            h.to_dict() for h in sync_engine.top_patterns("Japanese", k=2)
        ]
        assert profile["cuisine"] == "Japanese"
        assert len(labels) == 1 and labels[0].best in sync_engine.regions()

    def test_query_engine_rebuilds_after_refresh_swap(self, warm_cache, tmp_path):
        service = AnalysisService(warm_cache)

        async def scenario():
            async with AsyncAnalysisService(service) as svc:
                engine = AsyncQueryEngine(svc, CONFIG)
                first = await engine.engine()
                await svc._run_blocking(service.refresh, CONFIG)
                second = await engine.engine()
                return first is not second

        assert run(scenario())


class TestReviewHardening:
    """Regression tests for the review findings on the async layer."""

    def test_sqlite_backend_survives_cross_thread_serving(self, tmp_path):
        """serve --store-backend sqlite: computes happen on executor threads,
        stats/refresh scans on the event-loop thread — one shared connection
        must serve both."""
        from repro.serve.backends import create_backend

        backend = create_backend("sqlite", tmp_path / "cache")
        service = AnalysisService(ArtifactStore(backend=backend))

        async def scenario():
            async with AsyncAnalysisService(
                service, refresh_policy="ttl:0.0001"
            ) as svc:
                served = await svc.get(CONFIG)  # writes on an executor thread
                list(service.store.backend.entries())  # loop-thread scan
                payload = svc.describe()
                await asyncio.sleep(0.01)
                refreshed = await svc.refresh_once()  # stamps scan + rewrite
                return served, payload, refreshed

        served, payload, refreshed = run(scenario())
        assert served.source == "computed"
        assert payload["artifacts"]["analyses"] == 1
        assert len(refreshed) == 1
        backend.close()

    def test_known_configs_are_bounded_by_max_tracked(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            async with AsyncAnalysisService(service, max_tracked=3) as svc:
                for seed in range(8):
                    await svc.get(AnalysisConfig(seed=seed, scale=0.02))
                return dict(svc._known)

        known = run(scenario())
        assert len(known) == 3
        # Most recently served survive (seeds 5, 6, 7).
        kept = {config.seed for config in known.values()}
        assert kept == {5, 6, 7}

    def test_non_ttl_refresh_policy_is_rejected(self, tmp_path):
        service = StubService(tmp_path)
        for spec in ("lru:4", "maxbytes:1024", "ttl:600+lru:4"):
            with pytest.raises(ServeError):
                AsyncAnalysisService(service, refresh_policy=spec)

    def test_refresh_policy_none_spec_disables_refresh(self, tmp_path):
        service = StubService(tmp_path)
        svc = AsyncAnalysisService(service, refresh_policy="none")
        assert svc.refresh_policy is None

    def test_composite_ttl_refresh_policy_is_accepted(self, tmp_path):
        service = StubService(tmp_path)
        svc = AsyncAnalysisService(service, refresh_policy="ttl:600+ttl:60")
        assert svc.refresh_policy.describe() == "ttl:600+ttl:60"

    def test_refresher_survives_unexpected_sweep_failure(self, tmp_path):
        service = StubService(tmp_path)

        async def scenario():
            svc = AsyncAnalysisService(
                service, refresh_policy="ttl:0.0001", refresh_interval=0.02
            )
            boom = {"left": 2}

            original = svc.refresh_once

            async def flaky(**kwargs):
                if boom["left"]:
                    boom["left"] -= 1
                    raise RuntimeError("not a ReproError")
                return await original(**kwargs)

            svc.refresh_once = flaky
            async with svc:
                service.seed_artifact(CONFIG)
                await svc.get(CONFIG)
                for _ in range(150):
                    if service.store.stats.background_refreshes:
                        break
                    await asyncio.sleep(0.02)
                return svc.refresh_errors, service.store.stats.background_refreshes

        errors, refreshes = run(scenario())
        assert errors == 2  # both failures counted, loop survived
        assert refreshes >= 1  # and later sweeps still refreshed
