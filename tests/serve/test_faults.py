"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import ServeError
from repro.serve.backends import MemoryBackend
from repro.serve.faults import (
    FAULT_PLAN_ENV,
    FaultInjectingBackend,
    FaultRule,
    parse_fault_plan,
    resolve_fault_plan,
)
from repro.serve.store import ArtifactStore

KEY = "a" * 8


class TestPlanParsing:
    def test_single_rule(self):
        plan = parse_fault_plan("read:3:oserror")
        rule = plan.rules[0]
        assert (rule.op, rule.start, rule.stop, rule.action) == ("read", 3, 3, "oserror")

    def test_aliases_get_and_put(self):
        plan = parse_fault_plan("get:1:oserror;put:2:locked")
        assert [rule.op for rule in plan.rules] == ["read", "write"]

    def test_range_open_range_period_and_star(self):
        plan = parse_fault_plan(
            "read:2-4:oserror;write:5+:locked;delete:%3:oserror;any:*:latency:0.1"
        )
        first, second, third, fourth = plan.rules
        assert (first.start, first.stop) == (2, 4)
        assert (second.start, second.stop) == (5, None)
        assert third.every == 3
        assert (fourth.op, fourth.delay) == ("any", 0.1)

    def test_round_trips_through_describe(self):
        spec = "read:2-4:oserror;write:5+:locked;delete:%3:oserror;any:*:latency:0.1"
        assert parse_fault_plan(spec).describe() == spec

    def test_oserror_message_argument(self):
        rule = parse_fault_plan("read:1:oserror:disk full").rules[0]
        assert rule.message == "disk full"

    def test_empty_spec_is_falsy(self):
        assert not parse_fault_plan("")
        assert parse_fault_plan("read:1:oserror")

    @pytest.mark.parametrize(
        "spec",
        [
            "read:1",  # missing action
            "flush:1:oserror",  # unknown op
            "read:0:oserror",  # calls are 1-based
            "read:3-2:oserror",  # empty range
            "read:%0:oserror",  # bad period
            "read:1:explode",  # unknown action
            "read:1:latency",  # latency needs seconds
            "read:1:locked:arg",  # locked takes no argument
            "keys:1:torn",  # torn only applies to read/write
            "claim:1:torn",  # lease ops are all-or-nothing, torn is meaningless
            "renew:1:torn",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ServeError):
            parse_fault_plan(spec)

    def test_lease_ops_parse_and_round_trip(self):
        spec = "claim:%5:locked;renew:%7:oserror;release:1:oserror;lease:2+:locked"
        plan = parse_fault_plan(spec)
        assert [rule.op for rule in plan.rules] == [
            "claim",
            "renew",
            "release",
            "lease",
        ]
        assert plan.describe() == spec

    def test_resolve_falls_back_to_environment(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "read:1:oserror")
        assert resolve_fault_plan(None).describe() == "read:1:oserror"
        assert resolve_fault_plan("write:1:locked").describe() == "write:1:locked"
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert not resolve_fault_plan(None)

    def test_first_matching_rule_wins(self):
        plan = parse_fault_plan("read:1:oserror;read:*:locked")
        assert plan.rule_for("read", 1).action == "oserror"
        assert plan.rule_for("read", 2).action == "locked"


class TestRuleMatching:
    def test_any_op_matches_everything(self):
        rule = FaultRule(op="any", action="oserror")
        assert rule.matches("read", 1)
        assert rule.matches("keys", 7)

    def test_period_fires_on_multiples_only(self):
        rule = FaultRule(op="read", action="oserror", every=3)
        fired = [call for call in range(1, 10) if rule.matches("read", call)]
        assert fired == [3, 6, 9]


class TestFaultInjectingBackend:
    def test_nth_read_fails_once(self, any_backend):
        faulty = FaultInjectingBackend(any_backend, "read:2:oserror")
        faulty.write("analysis", KEY, "{}")
        assert faulty.read("analysis", KEY) == "{}"
        with pytest.raises(OSError):
            faulty.read("analysis", KEY)
        assert faulty.read("analysis", KEY) == "{}"
        assert faulty.calls("read") == 3
        assert len(faulty.injected) == 1

    def test_locked_raises_sqlite_operational_error(self):
        faulty = FaultInjectingBackend(MemoryBackend(), "write:1:locked")
        with pytest.raises(sqlite3.OperationalError):
            faulty.write("analysis", KEY, "{}")

    def test_latency_sleeps_then_succeeds(self):
        naps: list[float] = []
        faulty = FaultInjectingBackend(
            MemoryBackend(), "read:%2:latency:0.25", sleep=naps.append
        )
        faulty.write("analysis", KEY, "{}")
        assert faulty.read("analysis", KEY) == "{}"
        assert faulty.read("analysis", KEY) == "{}"
        assert naps == [0.25]

    def test_torn_write_lands_half_the_payload(self):
        inner = MemoryBackend()
        faulty = FaultInjectingBackend(inner, "write:1:torn")
        payload = '{"value": 12345678}'
        faulty.write("analysis", KEY, payload)
        stored = inner.read("analysis", KEY)
        assert stored == payload[: len(payload) // 2]

    def test_torn_write_is_quarantined_by_the_store(self, any_backend):
        faulty = FaultInjectingBackend(any_backend, "write:1:torn")
        store = ArtifactStore(backend=faulty, max_memory_entries=0)
        store.put("analysis", KEY, {"value": 12345678})
        assert store.get("analysis", KEY) is None
        assert store.stats.corrupt_recovered == 1
        store.put("analysis", KEY, {"value": 9})  # slot is rewritable
        assert store.get("analysis", KEY) == {"value": 9}

    def test_identity_and_passthrough(self, any_backend):
        faulty = FaultInjectingBackend(any_backend, "")
        assert faulty.name == any_backend.name
        assert faulty.root == any_backend.root
        assert any_backend.describe() in faulty.describe()

    def test_same_plan_same_sequence(self):
        logs = []
        for _run in range(2):
            faulty = FaultInjectingBackend(MemoryBackend(), "read:%2:oserror")
            faulty.write("analysis", KEY, "{}")
            outcomes = []
            for _call in range(6):
                try:
                    faulty.read("analysis", KEY)
                    outcomes.append("ok")
                except OSError:
                    outcomes.append("fault")
            logs.append(outcomes)
        assert logs[0] == logs[1] == ["ok", "fault"] * 3

    def test_injection_report(self):
        faulty = FaultInjectingBackend(MemoryBackend(), "read:1:oserror")
        with pytest.raises(OSError):
            faulty.read("analysis", KEY)
        report = faulty.injection_report()
        assert report["plan"] == "read:1:oserror"
        assert report["injections"] == 1
        assert report["injected"] == [{"op": "read", "call": 1, "action": "oserror"}]

    def test_lease_ops_are_faultable(self, any_backend):
        faulty = FaultInjectingBackend(
            any_backend, "claim:1:locked;renew:1:oserror;release:1:oserror"
        )
        with pytest.raises(sqlite3.OperationalError):
            faulty.claim("analysis", KEY, "owner-a", 30.0)
        # The fault consumed call 1; call 2 reaches the real backend.
        lease = faulty.claim("analysis", KEY, "owner-a", 30.0, now=100.0)
        assert lease is not None and lease.owner == "owner-a"
        with pytest.raises(OSError):
            faulty.renew("analysis", KEY, "owner-a", 30.0, now=101.0)
        renewed = faulty.renew("analysis", KEY, "owner-a", 30.0, now=102.0)
        assert renewed is not None and renewed.expires_at == 132.0
        with pytest.raises(OSError):
            faulty.release("analysis", KEY, "owner-a")
        assert faulty.release("analysis", KEY, "owner-a")
        assert faulty.calls("claim") == 2
        assert len(faulty.injected) == 3

    def test_lease_query_is_faultable(self):
        faulty = FaultInjectingBackend(MemoryBackend(), "lease:1:oserror")
        with pytest.raises(OSError):
            faulty.lease("analysis", KEY)
        assert faulty.lease("analysis", KEY) is None

    def test_quarantine_is_never_faulted(self):
        inner = MemoryBackend()
        faulty = FaultInjectingBackend(inner, "any:*:oserror")
        inner.write("analysis", KEY, "not json")
        faulty.quarantine("analysis", KEY)  # must not raise
        assert inner.read("analysis", KEY) is None
