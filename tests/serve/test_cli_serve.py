"""CLI tests for the serve-warm / query / classify subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

ARGS = ["--seed", "5", "--scale", "0.02"]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """A warmed serve cache shared by the read-path CLI tests."""
    cache = tmp_path_factory.mktemp("serve") / "cache"
    assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
    return cache


class TestServeStats:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        cache = tmp_path / "empty-cache"
        assert main([*ARGS, "serve-stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "Persisted artifacts" in out
        assert "Store traffic" in out
        assert "evictions" in out

    def test_stats_json_reports_artifacts(self, cache_dir, capsys):
        assert main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache_dir), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_dir"] == str(cache_dir)
        assert payload["artifacts"]["analyses"] >= 1
        assert payload["artifacts"]["mining_runs"] >= 1
        assert payload["artifacts"]["corpora"] >= 1
        assert set(payload["counters"]) >= {
            "memory_hits",
            "disk_hits",
            "misses",
            "writes",
            "deletes",
            "corrupt_recovered",
            "evictions",
            "disk_evictions",
            "bytes_written",
        }
        assert payload["backend"].startswith("directory")
        assert payload["store_bytes"] > 0
        assert payload["eviction"].startswith("lru:")

    def test_stats_surface_deletes_in_table(self, cache_dir, capsys):
        assert main([*ARGS, "serve-stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "deletes" in out
        assert "bytes_written" in out


class TestServeWarm:
    def test_first_warm_computes_then_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "cache miss" in first
        assert "served from computed" in first
        assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "cached analyses" in second

    def test_corpus_flag_rejected(self, tmp_path, capsys):
        code = main(
            [*ARGS, "--corpus", "whatever.json", "serve-warm",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 1
        assert "serve-warm cannot warm the cache from --corpus" in capsys.readouterr().err


class TestStoreBackendFlags:
    def test_serve_warm_on_sqlite_backend_hits_second_time(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        sqlite_args = [*ARGS, "serve-warm", "--cache-dir", str(cache),
                       "--store-backend", "sqlite"]
        assert main(sqlite_args) == 0
        assert "cache miss" in capsys.readouterr().out
        assert (cache / "artifacts.sqlite").exists()
        assert not list(cache.glob("*/analysis-*.json"))  # no directory artifacts
        assert main(sqlite_args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_eviction_spec_is_honoured_and_reported(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache),
             "--eviction", "lru:4+ttl:600", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["eviction"] == "lru:4+ttl:600"

    def test_eviction_none_disables_eviction(self, tmp_path, capsys):
        assert main(
            [*ARGS, "serve-stats", "--cache-dir", str(tmp_path / "cache"),
             "--eviction", "none", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["eviction"] == "none"

    def test_bad_eviction_spec_is_clean_error(self, tmp_path, capsys):
        code = main(
            [*ARGS, "serve-stats", "--cache-dir", str(tmp_path / "cache"),
             "--eviction", "fifo:3"]
        )
        assert code == 1
        assert "unknown eviction policy" in capsys.readouterr().err


class TestStoreMigrateRoundTrip:
    """Acceptance: a warmed cache round-trips directory -> sqlite -> directory
    with byte-identical artifacts and intact serve-stats reporting."""

    def test_warmed_cache_round_trips_through_sqlite(self, cache_dir, tmp_path, capsys):
        from repro.serve.backends import DirectoryBackend, SqliteBackend

        source = DirectoryBackend(cache_dir)
        original = {
            (kind, key): source.read(kind, key) for kind, key in source.scan()
        }
        assert original  # the warm populated analysis/mining/miningindex kinds

        # directory -> sqlite (same cache dir holds the sqlite file).
        assert main(
            ["store-migrate", "--cache-dir", str(cache_dir),
             "--to-backend", "sqlite"]
        ) == 0
        capsys.readouterr()

        # serve-stats over the sqlite backend reports the migrated artifacts.
        assert main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache_dir),
             "--store-backend", "sqlite", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"].startswith("sqlite")
        assert payload["artifacts"]["analyses"] >= 1
        assert payload["artifacts"]["mining_runs"] >= 1
        assert payload["store_bytes"] > 0

        # The read path serves from the migrated artifacts (no recompute).
        assert main(
            [*ARGS, "query", "--cache-dir", str(cache_dir),
             "--store-backend", "sqlite", "--nearest", "Japanese"]
        ) == 0
        assert "Nearest to Japanese" in capsys.readouterr().out

        # sqlite -> fresh directory: decoded artifacts are byte-identical.
        restored_dir = tmp_path / "restored"
        assert main(
            ["store-migrate", "--cache-dir", str(cache_dir),
             "--from-backend", "sqlite", "--to-backend", "directory",
             "--dest-cache-dir", str(restored_dir)]
        ) == 0
        restored = DirectoryBackend(restored_dir)
        assert {
            (kind, key): restored.read(kind, key) for kind, key in restored.scan()
        } == original

        sqlite_backend = SqliteBackend(cache_dir / "artifacts.sqlite")
        assert {
            (kind, key): sqlite_backend.read(kind, key)
            for kind, key in sqlite_backend.scan()
        } == original
        sqlite_backend.close()


class TestExplicitCorpus:
    @pytest.fixture(scope="class")
    def corpus_file(self, tmp_path_factory):
        from repro.datagen.generator import GeneratorConfig, SyntheticRecipeDBGenerator
        from repro.datagen.profiles import default_profiles
        from repro.recipedb.io_json import save_json

        profiles = {
            name: profile
            for name, profile in default_profiles().items()
            if name in ("Japanese", "Greek", "UK")
        }
        db = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=3, scale=0.03), profiles=profiles
        ).generate()
        path = tmp_path_factory.mktemp("serve-corpus") / "corpus.json"
        save_json(db, path)
        return path

    def test_query_uses_supplied_corpus_and_bypasses_cache(
        self, corpus_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        code = main(
            [*ARGS, "--corpus", str(corpus_file), "query",
             "--cache-dir", str(cache), "--nearest", "Japanese"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only the 3-cuisine corpus is in play, and nothing was cached.
        assert "Greek" in out and "UK" in out
        assert "Mexican" not in out
        assert not list(cache.glob("analysis-*.json")) if cache.exists() else True

    def test_classify_uses_supplied_corpus(self, corpus_file, tmp_path, capsys):
        code = main(
            [*ARGS, "--corpus", str(corpus_file), "classify",
             "--cache-dir", str(tmp_path / "cache"), "soy sauce, mirin"]
        )
        assert code == 0
        assert "->" in capsys.readouterr().out


class TestQuery:
    def test_nearest(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--nearest", "Japanese", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Nearest to Japanese" in out

    def test_patterns(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--patterns", "soy sauce"]
        )
        assert code == 0
        assert "soy sauce" in capsys.readouterr().out

    def test_cuisine_card_is_json(self, cache_dir, capsys):
        code = main([*ARGS, "query", "--cache-dir", str(cache_dir), "--cuisine", "Japanese"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cuisine"] == "Japanese"
        assert payload["top_patterns"]

    def test_no_query_flags_errors(self, cache_dir, capsys):
        code = main([*ARGS, "query", "--cache-dir", str(cache_dir)])
        assert code == 1
        assert "nothing to query" in capsys.readouterr().err

    def test_unknown_cuisine_is_clean_error(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--nearest", "Atlantis"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestClassify:
    def test_positional_recipes(self, cache_dir, capsys):
        code = main(
            [
                *ARGS,
                "classify",
                "--cache-dir", str(cache_dir),
                "soy sauce, mirin, white rice",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "soy sauce" in out

    def test_input_file_batch(self, cache_dir, tmp_path, capsys):
        recipes = tmp_path / "recipes.json"
        recipes.write_text(
            json.dumps([["soy sauce", "mirin"], "butter, flour, sugar"]),
            encoding="utf-8",
        )
        code = main(
            [*ARGS, "classify", "--cache-dir", str(cache_dir), "--input", str(recipes)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("->") == 2

    def test_no_recipes_is_clean_error(self, cache_dir, capsys):
        code = main([*ARGS, "classify", "--cache-dir", str(cache_dir)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_input_file_is_clean_error(self, cache_dir, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(
            [*ARGS, "classify", "--cache-dir", str(cache_dir), "--input", str(bad)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_arguments_fail_before_any_compute(self, tmp_path, capsys):
        # A fresh cache dir: argument errors must not trigger the pipeline
        # (which would also populate the cache as a side effect).
        cache = tmp_path / "fresh-cache"
        code = main([*ARGS, "classify", "--cache-dir", str(cache)])
        assert code == 1
        assert not cache.exists()


class TestServe:
    """The async `serve` subcommand (front-end wiring; semantics in test_aio*)."""

    def test_serve_starts_binds_and_exits_at_request_limit_zero(self, cache_dir, capsys):
        code = main(
            [*ARGS, "serve", "--cache-dir", str(cache_dir), "--port", "0",
             "--max-requests", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out

    def test_serve_warm_flag_precomputes_before_accepting(self, cache_dir, capsys):
        code = main(
            [*ARGS, "serve", "--cache-dir", str(cache_dir), "--port", "0",
             "--max-requests", "0", "--warm", "--refresh", "ttl:600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed analysis" in out
        assert "serving on http://" in out

    def test_serve_rejects_external_corpus(self, cache_dir, tmp_path, capsys):
        corpus = tmp_path / "corpus.json"
        corpus.write_text("{}", encoding="utf-8")
        code = main(
            [*ARGS, "--corpus", str(corpus), "serve", "--cache-dir", str(cache_dir),
             "--port", "0", "--max-requests", "0"]
        )
        assert code == 1
        assert "corpus" in capsys.readouterr().err

    def test_serve_rejects_bad_refresh_spec(self, cache_dir, capsys):
        code = main(
            [*ARGS, "serve", "--cache-dir", str(cache_dir), "--port", "0",
             "--max-requests", "0", "--refresh", "bogus"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServeStatsPolicySpecs:
    """serve-stats must surface the active eviction policy specs (not only counters)."""

    def test_text_output_reports_active_policy_specs(self, cache_dir, capsys):
        code = main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache_dir),
             "--eviction", "lru:16+ttl:600", "--disk-eviction", "maxbytes:9999999"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Store configuration" in out
        assert "lru:16+ttl:600" in out
        assert "maxbytes:9999999" in out

    def test_json_output_reports_async_counters(self, cache_dir, capsys):
        code = main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache_dir), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["eviction"].startswith("lru:")
        assert payload["disk_eviction"] == "none"
        assert "coalesced_hits" in payload["counters"]
        assert "background_refreshes" in payload["counters"]
