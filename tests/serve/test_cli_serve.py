"""CLI tests for the serve-warm / query / classify subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

ARGS = ["--seed", "5", "--scale", "0.02"]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """A warmed serve cache shared by the read-path CLI tests."""
    cache = tmp_path_factory.mktemp("serve") / "cache"
    assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
    return cache


class TestServeStats:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        cache = tmp_path / "empty-cache"
        assert main([*ARGS, "serve-stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "Persisted artifacts" in out
        assert "Store traffic" in out
        assert "evictions" in out

    def test_stats_json_reports_artifacts(self, cache_dir, capsys):
        assert main(
            [*ARGS, "serve-stats", "--cache-dir", str(cache_dir), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_dir"] == str(cache_dir)
        assert payload["artifacts"]["analyses"] >= 1
        assert payload["artifacts"]["mining_runs"] >= 1
        assert payload["artifacts"]["corpora"] >= 1
        assert set(payload["counters"]) >= {
            "memory_hits",
            "disk_hits",
            "misses",
            "writes",
            "corrupt_recovered",
            "evictions",
        }


class TestServeWarm:
    def test_first_warm_computes_then_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "cache miss" in first
        assert "served from computed" in first
        assert main([*ARGS, "serve-warm", "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "cached analyses" in second

    def test_corpus_flag_rejected(self, tmp_path, capsys):
        code = main(
            [*ARGS, "--corpus", "whatever.json", "serve-warm",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 1
        assert "serve-warm cannot warm the cache from --corpus" in capsys.readouterr().err


class TestExplicitCorpus:
    @pytest.fixture(scope="class")
    def corpus_file(self, tmp_path_factory):
        from repro.datagen.generator import GeneratorConfig, SyntheticRecipeDBGenerator
        from repro.datagen.profiles import default_profiles
        from repro.recipedb.io_json import save_json

        profiles = {
            name: profile
            for name, profile in default_profiles().items()
            if name in ("Japanese", "Greek", "UK")
        }
        db = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=3, scale=0.03), profiles=profiles
        ).generate()
        path = tmp_path_factory.mktemp("serve-corpus") / "corpus.json"
        save_json(db, path)
        return path

    def test_query_uses_supplied_corpus_and_bypasses_cache(
        self, corpus_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        code = main(
            [*ARGS, "--corpus", str(corpus_file), "query",
             "--cache-dir", str(cache), "--nearest", "Japanese"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only the 3-cuisine corpus is in play, and nothing was cached.
        assert "Greek" in out and "UK" in out
        assert "Mexican" not in out
        assert not list(cache.glob("analysis-*.json")) if cache.exists() else True

    def test_classify_uses_supplied_corpus(self, corpus_file, tmp_path, capsys):
        code = main(
            [*ARGS, "--corpus", str(corpus_file), "classify",
             "--cache-dir", str(tmp_path / "cache"), "soy sauce, mirin"]
        )
        assert code == 0
        assert "->" in capsys.readouterr().out


class TestQuery:
    def test_nearest(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--nearest", "Japanese", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Nearest to Japanese" in out

    def test_patterns(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--patterns", "soy sauce"]
        )
        assert code == 0
        assert "soy sauce" in capsys.readouterr().out

    def test_cuisine_card_is_json(self, cache_dir, capsys):
        code = main([*ARGS, "query", "--cache-dir", str(cache_dir), "--cuisine", "Japanese"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cuisine"] == "Japanese"
        assert payload["top_patterns"]

    def test_no_query_flags_errors(self, cache_dir, capsys):
        code = main([*ARGS, "query", "--cache-dir", str(cache_dir)])
        assert code == 1
        assert "nothing to query" in capsys.readouterr().err

    def test_unknown_cuisine_is_clean_error(self, cache_dir, capsys):
        code = main(
            [*ARGS, "query", "--cache-dir", str(cache_dir), "--nearest", "Atlantis"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestClassify:
    def test_positional_recipes(self, cache_dir, capsys):
        code = main(
            [
                *ARGS,
                "classify",
                "--cache-dir", str(cache_dir),
                "soy sauce, mirin, white rice",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "soy sauce" in out

    def test_input_file_batch(self, cache_dir, tmp_path, capsys):
        recipes = tmp_path / "recipes.json"
        recipes.write_text(
            json.dumps([["soy sauce", "mirin"], "butter, flour, sugar"]),
            encoding="utf-8",
        )
        code = main(
            [*ARGS, "classify", "--cache-dir", str(cache_dir), "--input", str(recipes)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("->") == 2

    def test_no_recipes_is_clean_error(self, cache_dir, capsys):
        code = main([*ARGS, "classify", "--cache-dir", str(cache_dir)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_input_file_is_clean_error(self, cache_dir, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(
            [*ARGS, "classify", "--cache-dir", str(cache_dir), "--input", str(bad)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_arguments_fail_before_any_compute(self, tmp_path, capsys):
        # A fresh cache dir: argument errors must not trigger the pipeline
        # (which would also populate the cache as a side effect).
        cache = tmp_path / "fresh-cache"
        code = main([*ARGS, "classify", "--cache-dir", str(cache)])
        assert code == 1
        assert not cache.exists()
