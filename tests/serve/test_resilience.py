"""Unit tests for retries, the circuit breaker and degraded mode."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.errors import ServeError
from repro.serve.backends import MemoryBackend
from repro.serve.faults import FaultInjectingBackend
from repro.serve.resilience import (
    CircuitBreaker,
    ResilientBackend,
    RetryPolicy,
    is_transient,
)
from repro.serve.store import ArtifactStore

KEY = "a" * 8


class FakeClock:
    """A manually-advanced clock so breaker timeouts need no real sleeping."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def resilient(
    plan: str,
    *,
    attempts: int = 3,
    threshold: int = 5,
    deadline: float | None = None,
    clock: FakeClock | None = None,
) -> tuple[ResilientBackend, list[float]]:
    """A ResilientBackend over a fault-injecting memory backend, sleeps recorded."""
    naps: list[float] = []
    clock = clock if clock is not None else FakeClock()
    backend = ResilientBackend(
        FaultInjectingBackend(MemoryBackend(), plan),
        retry=RetryPolicy(max_attempts=attempts, base_delay=0.05, deadline=deadline),
        breaker=CircuitBreaker(failure_threshold=threshold, reset_timeout=30.0, clock=clock),
        sleep=naps.append,
        clock=clock,
    )
    return backend, naps


class TestTransientClassification:
    def test_raw_transient_types(self):
        assert is_transient(OSError("disk"))
        assert is_transient(sqlite3.OperationalError("locked"))
        assert not is_transient(ValueError("nope"))

    def test_serve_error_with_transient_cause(self):
        wrapped = ServeError("backend failed")
        wrapped.__cause__ = OSError("disk")
        assert is_transient(wrapped)
        bare = ServeError("malformed key")
        assert not is_transient(bare)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=1.0)
        schedule = [policy.backoff(attempt) for attempt in range(1, 5)]
        assert schedule == [policy.backoff(attempt) for attempt in range(1, 5)]
        for attempt, delay in enumerate(schedule, start=1):
            raw = min(1.0, 0.05 * 2 ** (attempt - 1))
            assert raw * 0.5 <= delay < raw

    def test_validation(self):
        with pytest.raises(ServeError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServeError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ServeError):
            RetryPolicy(deadline=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent callers wait for it
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2


class TestResilientBackend:
    def test_transient_read_fault_absorbed_by_retry(self):
        backend, naps = resilient("read:1:oserror")
        backend.write("analysis", KEY, "{}")
        assert backend.read("analysis", KEY) == "{}"
        assert backend.stats.retries == 1
        assert backend.stats.transient_errors == 1
        assert backend.stats.exhausted == 0
        assert len(naps) == 1
        assert backend.health() == "ok"

    def test_locked_database_fault_absorbed(self):
        backend, _naps = resilient("write:1:locked")
        backend.write("analysis", KEY, "{}")
        assert backend.read("analysis", KEY) == "{}"

    def test_exhausted_read_degrades_to_miss(self):
        backend, _naps = resilient("read:*:oserror", attempts=3)
        backend.write("analysis", KEY, "{}")
        assert backend.read("analysis", KEY) is None
        assert backend.stats.exhausted == 1
        assert backend.stats.fallthrough_reads == 1
        assert backend.stats.transient_errors == 3
        assert backend.health() == "degraded"

    def test_non_transient_errors_propagate_immediately(self):
        class ExplodingBackend(MemoryBackend):
            def read(self, kind, key):
                raise ValueError("programming bug")

        backend = ResilientBackend(ExplodingBackend(), sleep=lambda _s: None)
        with pytest.raises(ValueError):
            backend.read("analysis", KEY)
        assert backend.stats.retries == 0
        assert backend.breaker.consecutive_failures == 0

    def test_breaker_trips_after_failure_budget_and_sheds(self):
        backend, _naps = resilient("read:*:oserror", attempts=1, threshold=3)
        backend.write("analysis", KEY, "{}")
        for _ in range(3):
            assert backend.read("analysis", KEY) is None
        assert backend.breaker.state == "open"
        # The next read never reaches the inner backend: it is shed.
        inner = backend.inner
        before = inner.calls("read")
        assert backend.read("analysis", KEY) is None
        assert inner.calls("read") == before
        assert backend.stats.shed_ops == 1
        assert backend.health() == "degraded"

    def test_open_breaker_degraded_semantics(self):
        clock = FakeClock()
        backend, _naps = resilient("any:*:oserror", attempts=1, threshold=1, clock=clock)
        backend.read("analysis", KEY)  # trips the breaker
        assert backend.breaker.state == "open"
        backend.write("analysis", KEY, "{}")
        assert backend.stats.dropped_writes == 1
        assert backend.exists("analysis", KEY) is False
        assert backend.keys("analysis") == []
        assert list(backend.entries()) == []
        assert backend.delete("analysis", KEY) is False
        assert backend.total_bytes() == 0

    def test_breaker_recovers_through_half_open_probe(self):
        clock = FakeClock()
        backend, _naps = resilient("read:1-2:oserror", attempts=1, threshold=2, clock=clock)
        backend.write("analysis", KEY, "{}")
        backend.read("analysis", KEY)
        backend.read("analysis", KEY)
        assert backend.breaker.state == "open"
        clock.advance(30.0)
        # The half-open probe succeeds (the plan only faults reads 1-2) and
        # closes the breaker again.
        assert backend.read("analysis", KEY) == "{}"
        assert backend.breaker.state == "closed"
        assert backend.health() == "ok"

    def test_deadline_bounds_the_retry_schedule(self):
        clock = FakeClock()
        naps: list[float] = []

        def sleep(seconds: float) -> None:
            naps.append(seconds)
            clock.advance(seconds)

        backend = ResilientBackend(
            FaultInjectingBackend(MemoryBackend(), "read:*:oserror"),
            retry=RetryPolicy(
                max_attempts=10, base_delay=5.0, max_delay=5.0, deadline=6.0
            ),
            breaker=CircuitBreaker(clock=clock),
            sleep=sleep,
            clock=clock,
        )
        assert backend.read("analysis", KEY) is None
        assert backend.stats.deadline_exceeded == 1
        # the first backoff (~4s) fits the 6s deadline, the second would not
        assert len(naps) == 1

    def test_store_over_resilient_backend_serves_through_faults(self):
        backend, _naps = resilient("read:2:oserror;write:2:locked")
        store = ArtifactStore(backend=backend, max_memory_entries=0)
        store.put("analysis", KEY, {"value": 1})
        assert store.get("analysis", KEY) == {"value": 1}  # faulted then retried
        store.put("analysis", "b" * 8, {"value": 2})  # faulted write retried
        assert store.get("analysis", "b" * 8) == {"value": 2}
        assert backend.stats.retries == 2

    def test_describe_resilience_payload(self):
        backend, _naps = resilient("read:1:oserror")
        backend.write("analysis", KEY, "{}")
        backend.read("analysis", KEY)
        payload = backend.describe_resilience()
        assert payload["health"] == "ok"
        assert payload["breaker"] == "closed"
        assert payload["counters"]["retries"] == 1
        assert "retry x3" in payload["retry"]

    def test_identity_and_passthrough(self, any_backend):
        backend = ResilientBackend(any_backend)
        assert backend.name == any_backend.name
        assert backend.root == any_backend.root
        assert any_backend.describe() in backend.describe()

    def test_counters_safe_under_concurrent_faults(self):
        backend, _naps = resilient("read:%2:oserror", attempts=2, threshold=100)
        backend.write("analysis", KEY, "{}")
        results: list[str | None] = []

        def reader() -> None:
            for _ in range(25):
                results.append(backend.read("analysis", KEY))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every fault is either retried into a success or degraded to None;
        # the books must balance exactly.
        stats = backend.stats
        assert stats.transient_errors == stats.retries + stats.exhausted
        assert results.count(None) == stats.fallthrough_reads
