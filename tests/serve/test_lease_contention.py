"""Cross-process lease contention: the fleet performs exactly one compute.

These tests are the acceptance harness for the store-level compute leases:
real OS processes (``fork`` context, the mining fan-out's idiom) share one
on-disk backend and race a single cold key.  The invariants asserted here
are the ones the service documents:

* a cold herd of N processes runs the pipeline exactly once fleet-wide
  (counted through an ``O_APPEND`` sidecar file every compute appends to);
* every process serves byte-identical artifact content;
* a holder killed mid-compute (``os._exit``, no cleanup) lets a waiter
  steal the lease after the TTL lapses and compute the answer itself.

The memory backend is process-local by construction, so only the two
shareable backends (``directory``, ``sqlite``) are exercised.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.core.config import AnalysisConfig
from repro.serve import codec
from repro.serve.backends import create_backend
from repro.serve.service import ANALYSIS_KIND, AnalysisService
from repro.serve.store import ArtifactStore

CONFIG = AnalysisConfig(seed=5, scale=0.02)

#: Backends whose state lives on disk and is therefore visible across
#: ``fork()`` boundaries.  ``memory`` is deliberately absent.
SHARED_BACKENDS = ("directory", "sqlite")

HERD_SIZE = 8


def _service_over(backend_name: str, cache_root: Path, **lease_options) -> AnalysisService:
    """A fresh service handle over the *shared* backend rooted at cache_root."""
    store = ArtifactStore(
        backend=create_backend(backend_name, cache_root), max_memory_entries=2
    )
    return AnalysisService(store, workers=0, **lease_options)


def _count_computes(service: AnalysisService, counter_path: str) -> None:
    """Wrap ``service._compute`` to append one line per pipeline run.

    ``O_APPEND`` single-``write`` lines are atomic across processes, so the
    sidecar's line count is an exact fleet-wide compute counter.
    """
    original = service._compute

    def counted(config):
        descriptor = os.open(
            counter_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(descriptor)
        return original(config)

    service._compute = counted


def _herd_worker(backend_name, cache_root, counter_path, barrier, queue):
    """One herd member: race the cold key, report (pid, source, artifact hash)."""
    try:
        service = _service_over(
            backend_name,
            cache_root,
            lease_ttl=30.0,
            lease_wait=240.0,
            lease_poll=0.02,
        )
        _count_computes(service, counter_path)
        barrier.wait(timeout=60)
        served = service.get_or_run(CONFIG)
        text = service.store.backend.read(ANALYSIS_KIND, served.key)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        queue.put((os.getpid(), served.source, digest))
    except BaseException as exc:  # noqa: BLE001 - surface the failure to the parent
        queue.put((os.getpid(), "error", repr(exc)))
        raise


def _doomed_holder(backend_name, cache_root, key, ready):
    """Claim the key's lease, signal the parent, and die without cleanup."""
    backend = create_backend(backend_name, cache_root)
    lease = backend.claim(ANALYSIS_KIND, key, "doomed-holder", 2.0)
    assert lease is not None
    ready.set()
    os._exit(1)  # crash: no release, no renewals -- the lease must lapse


@pytest.mark.parametrize("backend_name", SHARED_BACKENDS)
def test_cold_herd_computes_exactly_once(backend_name, tmp_path):
    """8 processes race one cold key; the fleet runs the pipeline once."""
    context = multiprocessing.get_context("fork")
    cache_root = tmp_path / "cache"
    counter_path = tmp_path / "computes.log"
    barrier = context.Barrier(HERD_SIZE)
    queue = context.Queue()
    workers = [
        context.Process(
            target=_herd_worker,
            args=(backend_name, cache_root, str(counter_path), barrier, queue),
        )
        for _ in range(HERD_SIZE)
    ]
    for worker in workers:
        worker.start()
    results = [queue.get(timeout=300) for _ in workers]
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0

    errors = [entry for entry in results if entry[1] == "error"]
    assert not errors, f"herd workers failed: {errors}"

    # Exactly one pipeline run fleet-wide, counted outside the lease layer.
    compute_lines = counter_path.read_text().splitlines()
    assert len(compute_lines) == 1

    # Exactly one process reports source "computed"; all others were served
    # the winner's artifact (from disk, possibly via the lease wait).
    sources = sorted(source for _, source, _ in results)
    assert sources.count("computed") == 1
    assert set(sources) <= {"computed", "disk"}

    # Every process decoded byte-identical artifact content.
    digests = {digest for _, _, digest in results}
    assert len(digests) == 1

    # The slot's lease was released (or has lapsed): nothing left behind.
    verifier = _service_over(backend_name, cache_root)
    assert verifier.store.lease(ANALYSIS_KIND, codec.analysis_key(CONFIG)) is None
    assert verifier.get_or_run(CONFIG).source in {"disk", "memory"}


@pytest.mark.parametrize("backend_name", SHARED_BACKENDS)
def test_killed_holder_lease_is_stolen(backend_name, tmp_path):
    """A holder killed without cleanup lets a waiter steal after the TTL."""
    context = multiprocessing.get_context("fork")
    cache_root = tmp_path / "cache"
    service = _service_over(
        backend_name,
        cache_root,
        lease_ttl=2.0,
        lease_wait=120.0,
        lease_poll=0.05,
    )
    key = codec.analysis_key(CONFIG)

    ready = context.Event()
    holder = context.Process(
        target=_doomed_holder, args=(backend_name, cache_root, key, ready)
    )
    holder.start()
    assert ready.wait(timeout=60)
    holder.join(timeout=60)
    assert holder.exitcode == 1  # died via os._exit(1), lease left behind

    # The dead process's lease is still live on disk right now ...
    assert service.store.lease(ANALYSIS_KIND, key) is not None

    # ... so the service must wait it out, steal the claim and compute.
    served = service.get_or_run(CONFIG)
    assert served.source == "computed"
    assert service.store.stats.lease_waits == 1
    assert service.store.stats.lease_steals == 1
    assert service.store.stats.lease_claims == 1
    # The steal's own lease was released afterwards.
    assert service.store.lease(ANALYSIS_KIND, key) is None
