"""Backend migration: byte-identical round-trips across backends and layouts."""

from __future__ import annotations

import pytest

from repro.serve.backends import DirectoryBackend, MemoryBackend, SqliteBackend
from repro.serve.migrate import migrate_backend
from repro.serve.store import ArtifactStore

KEY_A = "a" * 8
KEY_B = "1b" + "c" * 6
KEY_C = "f0" + "d" * 6

SEED_ARTIFACTS = {
    ("analysis", KEY_A): '{"figure":2,"patterns":[1,2]}',
    ("mining", KEY_B): '{"patterns":{"Japanese":3}}',
    ("miningindex", KEY_C): '{"entries":{}}',
}


def seed(backend) -> None:
    for (kind, key), text in SEED_ARTIFACTS.items():
        backend.write(kind, key, text)


def snapshot(backend) -> dict[tuple[str, str], str]:
    return {(kind, key): backend.read(kind, key) for kind, key in backend.scan()}


class TestMigrateBackend:
    def test_directory_to_sqlite_round_trip_is_byte_identical(self, tmp_path):
        source = DirectoryBackend(tmp_path / "dir")
        seed(source)
        middle = SqliteBackend(tmp_path / "artifacts.sqlite")
        report = migrate_backend(source, middle)
        assert report.migrated == len(SEED_ARTIFACTS)
        assert report.bytes_moved == sum(len(t) for t in SEED_ARTIFACTS.values())
        assert report.per_kind == {"analysis": 1, "mining": 1, "miningindex": 1}
        assert snapshot(middle) == SEED_ARTIFACTS
        # ... and back into a fresh directory tree.
        destination = DirectoryBackend(tmp_path / "dir2")
        migrate_backend(middle, destination)
        assert snapshot(destination) == SEED_ARTIFACTS
        middle.close()

    def test_any_backend_to_memory_replica(self, any_backend):
        seed(any_backend)
        replica = MemoryBackend()
        report = migrate_backend(any_backend, replica)
        assert report.migrated == len(SEED_ARTIFACTS)
        assert snapshot(replica) == SEED_ARTIFACTS
        # The source is untouched without delete_source.
        assert snapshot(any_backend) == SEED_ARTIFACTS

    def test_delete_source_moves(self, tmp_path):
        source = DirectoryBackend(tmp_path / "dir")
        seed(source)
        destination = SqliteBackend(tmp_path / "artifacts.sqlite")
        report = migrate_backend(source, destination, delete_source=True)
        assert report.deleted_source == len(SEED_ARTIFACTS)
        assert snapshot(source) == {}
        assert snapshot(destination) == SEED_ARTIFACTS
        destination.close()

    def test_flat_to_sharded_layout_same_root(self, tmp_path):
        flat = DirectoryBackend(tmp_path, shards=0)
        seed(flat)
        sharded = DirectoryBackend(tmp_path, shards=256)
        report = migrate_backend(flat, sharded, delete_source=True)
        assert report.migrated == len(SEED_ARTIFACTS)
        assert snapshot(sharded) == SEED_ARTIFACTS
        assert snapshot(flat) == {}
        assert (tmp_path / KEY_B[:2] / f"mining-{KEY_B}.json").exists()

    def test_flat_migration_leaves_corpus_snapshots_in_place(self, tmp_path):
        # Corpus files are service auxiliaries living next to the artifacts
        # in the flat layout; the service looks them up at the cache root,
        # so a migration must neither move nor delete them.
        flat = DirectoryBackend(tmp_path, shards=0)
        seed(flat)
        corpus = tmp_path / ("corpus-" + "9" * 8 + ".json")
        corpus.write_text('{"format_version":1}', encoding="utf-8")
        report = migrate_backend(flat, DirectoryBackend(tmp_path), delete_source=True)
        assert report.migrated == len(SEED_ARTIFACTS)
        assert "corpus" not in report.per_kind
        assert corpus.exists()

    def test_same_layout_migration_is_noop(self, tmp_path):
        source = DirectoryBackend(tmp_path)
        seed(source)
        report = migrate_backend(source, DirectoryBackend(tmp_path))
        assert report.migrated == 0
        assert snapshot(source) == SEED_ARTIFACTS

    def test_corrupt_source_artifact_is_skipped_and_quarantined(self, tmp_path):
        source = DirectoryBackend(tmp_path / "dir")
        seed(source)
        source.write("analysis", KEY_C, "{broken")
        destination = MemoryBackend()
        report = migrate_backend(source, destination)
        assert report.migrated == len(SEED_ARTIFACTS)
        assert report.skipped_corrupt == 1
        assert snapshot(destination) == SEED_ARTIFACTS
        assert not source.exists("analysis", KEY_C)  # quarantined away

    def test_migrated_store_serves_identically(self, tmp_path):
        source_store = ArtifactStore(tmp_path / "dir")
        source_store.put("analysis", KEY_A, {"b": 1, "a": 2})
        destination = SqliteBackend(tmp_path / "artifacts.sqlite")
        migrate_backend(source_store.backend, destination)
        served = ArtifactStore(backend=destination)
        assert served.get("analysis", KEY_A) == {"b": 1, "a": 2}
        assert served.stats.disk_hits == 1
        destination.close()


class TestMigrateCLI:
    @pytest.fixture()
    def flat_cache(self, tmp_path):
        cache = tmp_path / "cache"
        backend = DirectoryBackend(cache, shards=0)
        seed(backend)
        return cache

    def test_cli_flat_to_sqlite(self, flat_cache, capsys):
        from repro.cli import main

        code = main(
            [
                "store-migrate",
                "--cache-dir", str(flat_cache),
                "--from-shards", "0",
                "--to-backend", "sqlite",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"migrated {len(SEED_ARTIFACTS)} artifacts" in out
        replica = SqliteBackend(flat_cache / "artifacts.sqlite")
        assert snapshot(replica) == SEED_ARTIFACTS
        replica.close()

    def test_cli_rejects_identity_migration(self, flat_cache, capsys):
        from repro.cli import main

        code = main(
            [
                "store-migrate",
                "--cache-dir", str(flat_cache),
                "--to-backend", "directory",
            ]
        )
        assert code == 1
        assert "same storage location" in capsys.readouterr().err

    def test_cli_rejects_sqlite_to_same_sqlite(self, flat_cache, capsys):
        from repro.cli import main

        code = main(
            [
                "store-migrate",
                "--cache-dir", str(flat_cache),
                "--from-backend", "sqlite",
                "--to-backend", "sqlite",
            ]
        )
        assert code == 1
        assert "same storage location" in capsys.readouterr().err

    def test_cli_rejects_memory_source(self, flat_cache, capsys):
        from repro.cli import main

        code = main(
            [
                "store-migrate",
                "--cache-dir", str(flat_cache),
                "--from-backend", "memory",
                "--to-backend", "sqlite",
            ]
        )
        assert code == 1
        assert "memory backend" in capsys.readouterr().err

    def test_cli_json_report(self, flat_cache, capsys):
        import json

        from repro.cli import main

        code = main(
            [
                "store-migrate",
                "--cache-dir", str(flat_cache),
                "--from-shards", "0",
                "--to-backend", "directory",
                "--to-shards", "256",
                "--delete-source",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["migrated"] == len(SEED_ARTIFACTS)
        assert report["deleted_source"] == len(SEED_ARTIFACTS)
        assert report["per_kind"]["analysis"] == 1
