"""Unit tests for the entity pools."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GenerationError
from repro.datagen.pantry import (
    CORE_INGREDIENTS,
    PROCESSES,
    SIGNATURE_INGREDIENTS,
    UTENSILS,
    expanded_ingredient_pool,
    expanded_process_pool,
    expanded_utensil_pool,
)


class TestBasePools:
    def test_signature_ingredients_are_core(self):
        assert set(SIGNATURE_INGREDIENTS) <= set(CORE_INGREDIENTS)

    def test_no_duplicates_in_base_pools(self):
        assert len(set(CORE_INGREDIENTS)) == len(CORE_INGREDIENTS)
        assert len(set(PROCESSES)) == len(PROCESSES)
        assert len(set(UTENSILS)) == len(UTENSILS)

    def test_table1_headline_entities_present(self):
        # Every entity appearing in a Table I headline pattern must exist.
        for item in ("butter", "salt", "onion", "garlic clove", "soy sauce", "cream",
                     "olive oil", "parmesan cheese", "cilantro", "fish sauce",
                     "sesame oil", "green onion", "lemon juice", "cumin", "cinnamon",
                     "sugar"):
            assert item in CORE_INGREDIENTS
        for process in ("add", "heat", "bake", "preheat"):
            assert process in PROCESSES
        for utensil in ("oven", "bowl", "skillet"):
            assert utensil in UTENSILS


class TestExpandedPools:
    @pytest.mark.parametrize("size", [220, 500, 1000, 5000])
    def test_ingredient_pool_exact_size_and_unique(self, size):
        pool = expanded_ingredient_pool(size)
        assert len(pool) == size
        assert len(set(pool)) == size

    def test_ingredient_pool_truncation_keeps_signatures(self):
        pool = expanded_ingredient_pool(len(SIGNATURE_INGREDIENTS))
        assert set(pool) == set(SIGNATURE_INGREDIENTS)

    def test_ingredient_pool_too_small_rejected(self):
        with pytest.raises(GenerationError):
            expanded_ingredient_pool(3)
        with pytest.raises(GenerationError):
            expanded_ingredient_pool(0)

    @pytest.mark.parametrize("size", [50, 115, 268, 600])
    def test_process_pool_sizes(self, size):
        pool = expanded_process_pool(size)
        assert len(pool) == size
        assert len(set(pool)) == size

    @pytest.mark.parametrize("size", [10, 40, 69, 120])
    def test_utensil_pool_sizes(self, size):
        pool = expanded_utensil_pool(size)
        assert len(pool) == size
        assert len(set(pool)) == size

    def test_invalid_sizes_rejected(self):
        with pytest.raises(GenerationError):
            expanded_process_pool(0)
        with pytest.raises(GenerationError):
            expanded_utensil_pool(-2)

    @given(st.integers(min_value=len(CORE_INGREDIENTS), max_value=4000))
    def test_expansion_is_prefix_stable(self, size):
        """Growing the pool must not change the identity of earlier entries."""
        small = expanded_ingredient_pool(size)
        larger = expanded_ingredient_pool(size + 37)
        assert larger[:size] == small
