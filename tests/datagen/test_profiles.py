"""Unit tests for the calibrated cuisine profiles."""

from __future__ import annotations

import pytest

from repro.errors import GenerationError
from repro.datagen.pantry import CORE_INGREDIENTS, PROCESSES, UTENSILS
from repro.datagen.profiles import (
    PAPER_REGION_NAMES,
    PAPER_TABLE1_ROWS,
    CuisineProfile,
    default_profiles,
    profile_for,
)


class TestPaperTable:
    def test_has_26_regions(self):
        assert len(PAPER_TABLE1_ROWS) == 26
        assert len(set(PAPER_REGION_NAMES)) == 26

    def test_total_recipe_count_matches_paper(self):
        # The abstract reports 118,071 recipes; the Table I rows as printed sum
        # to 118,171 (a 100-recipe discrepancy in the paper itself).  Accept
        # the row sum within 0.2% of the abstract figure.
        total = sum(row[1] for row in PAPER_TABLE1_ROWS)
        assert abs(total - 118_071) / 118_071 < 0.002

    def test_supports_in_published_range(self):
        for _region, _count, _pattern, support, _n in PAPER_TABLE1_ROWS:
            assert 0.20 <= support <= 0.46


class TestDefaultProfiles:
    def test_one_profile_per_paper_region(self):
        profiles = default_profiles()
        assert set(profiles) == set(PAPER_REGION_NAMES)

    def test_recipe_counts_match_table1(self):
        profiles = default_profiles()
        for region, count, *_ in PAPER_TABLE1_ROWS:
            assert profiles[region].paper_recipe_count == count

    def test_headline_items_are_signatures(self):
        """Every ingredient named in a cuisine's Table I headline pattern must
        be a calibrated signature item of that cuisine's profile."""
        profiles = default_profiles()
        known_ingredients = set(CORE_INGREDIENTS)
        for region, _count, pattern, _support, _n in PAPER_TABLE1_ROWS:
            profile = profiles[region]
            signature_names = set(profile.all_signatures())
            for part in pattern.split("+"):
                item = part.strip().lower()
                if item in known_ingredients:
                    assert item in signature_names, f"{region}: {item} missing"

    def test_signature_entities_exist_in_pools(self):
        pools = set(CORE_INGREDIENTS) | set(PROCESSES) | set(UTENSILS)
        for profile in default_profiles().values():
            for name in profile.all_signatures():
                assert name in pools, f"{profile.name}: {name} not in any pool"

    def test_probabilities_within_paper_band(self):
        for profile in default_profiles().values():
            for name, probability in profile.all_signatures().items():
                assert 0.0 < probability <= 0.55, f"{profile.name}:{name}"

    def test_processes_capped_below_headline_items(self):
        for profile in default_profiles().values():
            for probability in profile.signature_processes.values():
                assert probability <= 0.38

    def test_profile_for_lookup(self):
        assert profile_for("Japanese").continent == "Asia"
        with pytest.raises(GenerationError):
            profile_for("Atlantis")


class TestCuisineProfile:
    def test_validation(self):
        with pytest.raises(GenerationError):
            CuisineProfile("X", "Y", paper_recipe_count=0)
        with pytest.raises(GenerationError):
            CuisineProfile("X", "Y", paper_recipe_count=10, signature_items={"salt": 1.5})
        with pytest.raises(GenerationError):
            CuisineProfile("X", "Y", paper_recipe_count=10, signature_items={"salt": 0.0})

    def test_scaled_recipe_count(self):
        profile = CuisineProfile("X", "Y", paper_recipe_count=1000)
        assert profile.scaled_recipe_count(0.5) == 500
        assert profile.scaled_recipe_count(0.001) == 20  # floor keeps mining sane
        with pytest.raises(GenerationError):
            profile.scaled_recipe_count(0)

    def test_all_signatures_merges_kinds(self):
        profile = CuisineProfile(
            "X", "Y", paper_recipe_count=10,
            signature_items={"salt": 0.4},
            signature_processes={"add": 0.3},
            signature_utensils={"bowl": 0.2},
        )
        assert profile.all_signatures() == {"salt": 0.4, "add": 0.3, "bowl": 0.2}
