"""Unit and property tests for the sampling helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GenerationError
from repro.datagen.random_utils import (
    bernoulli,
    make_rng,
    poisson_clamped,
    sample_without_replacement,
    zipf_weights,
)


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_negative_seed_rejected(self):
        with pytest.raises(GenerationError):
            make_rng(-1)


class TestZipfWeights:
    def test_sums_to_one_and_decreasing(self):
        weights = zipf_weights(100, exponent=1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_invalid_arguments(self):
        with pytest.raises(GenerationError):
            zipf_weights(0)
        with pytest.raises(GenerationError):
            zipf_weights(10, exponent=0)

    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.1, max_value=3.0))
    def test_normalised_for_any_size(self, size, exponent):
        weights = zipf_weights(size, exponent)
        assert weights.shape == (size,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)


class TestSampleWithoutReplacement:
    def test_returns_distinct_items(self):
        rng = make_rng(1)
        population = [f"item{i}" for i in range(50)]
        weights = zipf_weights(50)
        sample = sample_without_replacement(rng, population, weights, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert set(sample) <= set(population)

    def test_count_larger_than_population_returns_all(self):
        rng = make_rng(1)
        population = ["a", "b", "c"]
        sample = sample_without_replacement(rng, population, zipf_weights(3), 10)
        assert sample == population

    def test_zero_count(self):
        rng = make_rng(1)
        assert sample_without_replacement(rng, ["a"], zipf_weights(1), 0) == []

    def test_mismatched_lengths_rejected(self):
        rng = make_rng(1)
        with pytest.raises(GenerationError):
            sample_without_replacement(rng, ["a", "b"], zipf_weights(3), 1)

    def test_negative_count_rejected(self):
        rng = make_rng(1)
        with pytest.raises(GenerationError):
            sample_without_replacement(rng, ["a"], zipf_weights(1), -1)


class TestPoissonClamped:
    def test_within_bounds(self):
        rng = make_rng(3)
        for _ in range(200):
            value = poisson_clamped(rng, mean=10.0, minimum=1, maximum=15)
            assert 1 <= value <= 15

    def test_mean_is_respected(self):
        rng = make_rng(3)
        values = [poisson_clamped(rng, 10.0, 0, 100) for _ in range(2000)]
        assert 9.0 <= float(np.mean(values)) <= 11.0

    def test_invalid_arguments(self):
        rng = make_rng(0)
        with pytest.raises(GenerationError):
            poisson_clamped(rng, 0.0, 0, 10)
        with pytest.raises(GenerationError):
            poisson_clamped(rng, 5.0, 10, 5)
        with pytest.raises(GenerationError):
            poisson_clamped(rng, 5.0, -1, 5)


class TestBernoulli:
    def test_extremes(self):
        rng = make_rng(0)
        assert bernoulli(rng, 1.0) is True
        assert bernoulli(rng, 0.0) is False

    def test_frequency_tracks_probability(self):
        rng = make_rng(11)
        hits = sum(bernoulli(rng, 0.3) for _ in range(5000))
        assert 0.25 <= hits / 5000 <= 0.35

    def test_invalid_probability(self):
        rng = make_rng(0)
        with pytest.raises(GenerationError):
            bernoulli(rng, 1.2)
