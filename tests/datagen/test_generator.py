"""Unit tests for the synthetic RecipeDB generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.datagen.generator import GeneratorConfig, SyntheticRecipeDBGenerator, generate_corpus
from repro.datagen.profiles import default_profiles, profile_for


@pytest.fixture(scope="module")
def small_generator() -> SyntheticRecipeDBGenerator:
    profiles = {name: default_profiles()[name] for name in ("Japanese", "Greek", "UK")}
    return SyntheticRecipeDBGenerator(GeneratorConfig(seed=11, scale=0.05), profiles=profiles)


@pytest.fixture(scope="module")
def small_db(small_generator):
    return small_generator.generate()


class TestGeneratorConfig:
    def test_defaults_valid(self):
        config = GeneratorConfig()
        assert config.scale == 0.05
        assert 0.10 <= config.utensil_missing_rate <= 0.15

    @pytest.mark.parametrize(
        "field,value",
        [
            ("seed", -1),
            ("scale", 0),
            ("mean_ingredients", 0),
            ("utensil_missing_rate", 1.0),
            ("ingredient_vocabulary", 0),
            ("zipf_exponent", 0),
            ("traditional_recipe_rate", 1.0),
            ("signature_boost", 0.5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(GenerationError):
            GeneratorConfig(**{field: value})

    def test_vocabulary_sizes_grow_with_scale(self):
        small = GeneratorConfig(scale=0.02)
        large = GeneratorConfig(scale=1.0)
        assert small.resolved_ingredient_vocabulary() < large.resolved_ingredient_vocabulary()
        assert large.resolved_ingredient_vocabulary() == 20280
        assert large.resolved_process_vocabulary() == 268
        assert large.resolved_utensil_vocabulary() == 69

    def test_explicit_vocabulary_wins(self):
        config = GeneratorConfig(ingredient_vocabulary=333)
        assert config.resolved_ingredient_vocabulary() == 333


class TestGenerator:
    def test_requires_profiles(self):
        with pytest.raises(GenerationError):
            SyntheticRecipeDBGenerator(GeneratorConfig(), profiles={})

    def test_region_recipe_counts_scale(self, small_generator):
        counts = small_generator.region_recipe_counts()
        assert counts["Japanese"] == round(profile_for("Japanese").paper_recipe_count * 0.05)
        assert set(counts) == {"Japanese", "Greek", "UK"}

    def test_generated_database_shape(self, small_db):
        assert set(small_db.region_names()) == {"Greek", "Japanese", "UK"}
        assert len(small_db) == sum(small_db.region_recipe_counts().values())
        assert small_db.recipe_ids() == list(range(len(small_db)))

    def test_signature_supports_near_calibration(self, small_db):
        """Within-cuisine supports should track the calibrated probabilities."""
        checks = [
            ("Japanese", "soy sauce", profile_for("Japanese").signature_items["soy sauce"]),
            ("Greek", "olive oil", profile_for("Greek").signature_items["olive oil"]),
            ("UK", "butter", profile_for("UK").signature_items["butter"]),
        ]
        for region, item, target in checks:
            measured = small_db.item_support(item, region=region)
            assert measured == pytest.approx(target, abs=0.12), (region, item)

    def test_signature_items_are_cuisine_specific(self, small_db):
        assert small_db.item_support("soy sauce", region="Japanese") > \
            small_db.item_support("soy sauce", region="UK") + 0.2
        assert small_db.item_support("olive oil", region="Greek") > \
            small_db.item_support("olive oil", region="Japanese") + 0.2

    def test_recipe_sizes_track_means(self, small_db):
        recipes = small_db.recipes()
        mean_ingredients = np.mean([r.n_ingredients for r in recipes])
        mean_processes = np.mean([r.n_processes for r in recipes])
        assert 7.0 <= mean_ingredients <= 13.0
        assert 9.0 <= mean_processes <= 15.0

    def test_some_recipes_lack_utensils(self, small_db):
        missing = sum(1 for r in small_db.recipes() if not r.has_utensils)
        assert 0 < missing < len(small_db)

    def test_determinism(self):
        profiles = {name: default_profiles()[name] for name in ("Japanese", "UK")}
        first = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=5, scale=0.02), profiles=profiles
        ).generate()
        second = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=5, scale=0.02), profiles=profiles
        ).generate()
        assert first.to_dicts() == second.to_dicts()

    def test_different_seeds_differ(self):
        profiles = {name: default_profiles()[name] for name in ("Japanese", "UK")}
        first = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=5, scale=0.02), profiles=profiles
        ).generate()
        second = SyntheticRecipeDBGenerator(
            GeneratorConfig(seed=6, scale=0.02), profiles=profiles
        ).generate()
        assert first.to_dicts() != second.to_dicts()

    def test_pools_contain_every_signature(self, small_generator):
        for profile in small_generator.profiles.values():
            for item in profile.signature_items:
                assert item in small_generator.ingredient_pool
            for process in profile.signature_processes:
                assert process in small_generator.process_pool
            for utensil in profile.signature_utensils:
                assert utensil in small_generator.utensil_pool


class TestGenerateCorpusHelper:
    def test_generate_corpus_shortcut(self):
        profiles = {name: default_profiles()[name] for name in ("Thai", "Korean")}
        db = generate_corpus(seed=3, scale=0.03, profiles=profiles)
        assert set(db.region_names()) == {"Korean", "Thai"}

    def test_explicit_config_overrides_shortcuts(self):
        profiles = {name: default_profiles()[name] for name in ("Thai",)}
        config = GeneratorConfig(seed=1, scale=0.03)
        db = generate_corpus(seed=999, scale=0.5, profiles=profiles, config=config)
        assert len(db) == round(profile_for("Thai").paper_recipe_count * 0.03)
