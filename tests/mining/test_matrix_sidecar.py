"""Round-trip and invalidation tests for persisted transaction matrices."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SidecarError
from repro.mining.bitmatrix import TransactionMatrix, sidecar_paths
from repro.mining.eclat import EclatMiner
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase

TRANSACTIONS = [
    ["soy sauce", "mirin", "rice"],
    ["soy sauce", "mirin"],
    ["rice", "nori"],
    ["soy sauce"],
    ["butter", "flour", "rice"],
]


@pytest.fixture()
def database() -> TransactionDatabase:
    return TransactionDatabase(TRANSACTIONS)


@pytest.fixture()
def saved(database, tmp_path):
    prefix = tmp_path / "region"
    database.matrix().save(prefix, fingerprint="abc123")
    return prefix


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_arrays_and_vocabulary_survive(self, database, saved, mmap):
        original = database.matrix()
        loaded = TransactionMatrix.load(saved, mmap=mmap)
        assert loaded.items == original.items
        assert loaded.n_transactions == original.n_transactions
        assert loaded.n_words == original.n_words
        assert np.array_equal(loaded.packed_rows, original.packed_rows)
        assert np.array_equal(loaded.item_supports, original.item_supports)
        for got, expected in zip(
            loaded.transaction_id_arrays(), original.transaction_id_arrays()
        ):
            assert np.array_equal(got, expected)

    def test_memory_map_is_read_only(self, saved):
        loaded = TransactionMatrix.load(saved, mmap=True)
        assert isinstance(loaded.packed_rows.base, np.memmap)
        with pytest.raises(ValueError):
            loaded.packed_rows[0, 0] = 1

    def test_mining_on_loaded_matrix_matches_original(self, database, saved):
        loaded_db = TransactionDatabase.from_matrix(TransactionMatrix.load(saved))
        for miner in (
            FPGrowthMiner(0.2, max_length=3),
            EclatMiner(0.2, max_length=3),
            FPGrowthMiner(0.2, max_length=3, engine="python"),
        ):
            assert miner.mine(loaded_db) == miner.mine(database)

    def test_lazy_database_materialises_identically(self, database, saved):
        lazy = TransactionDatabase.from_matrix(TransactionMatrix.load(saved))
        assert len(lazy) == len(database)
        assert lazy == database  # forces materialisation
        assert lazy.transactions == database.transactions
        assert lazy.item_counts() == database.item_counts()
        assert lazy.vocabulary() == database.vocabulary()
        assert lazy.absolute_support(["soy sauce", "mirin"]) == 2

    def test_empty_database_round_trips(self, tmp_path):
        empty = TransactionDatabase([])
        prefix = tmp_path / "empty"
        empty.matrix().save(prefix)
        loaded = TransactionMatrix.load(prefix)
        assert loaded.n_transactions == 0
        assert loaded.items == ()


class TestInvalidation:
    def test_fingerprint_mismatch_is_stale(self, saved):
        with pytest.raises(SidecarError, match="stale"):
            TransactionMatrix.load(saved, expected_fingerprint="different")

    def test_matching_fingerprint_loads(self, saved):
        TransactionMatrix.load(saved, expected_fingerprint="abc123")

    def test_missing_sidecar(self, tmp_path):
        with pytest.raises(SidecarError, match="no matrix sidecar"):
            TransactionMatrix.load(tmp_path / "nowhere")

    def test_corrupt_meta(self, saved):
        sidecar_paths(saved)["meta"].write_text("{not json", encoding="utf-8")
        with pytest.raises(SidecarError):
            TransactionMatrix.load(saved)

    def test_unknown_version_rejected(self, saved):
        meta_path = sidecar_paths(saved)["meta"]
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SidecarError, match="version"):
            TransactionMatrix.load(saved)

    def test_truncated_rows_rejected(self, saved):
        paths = sidecar_paths(saved)
        paths["rows"].write_bytes(b"\x93NUMPY garbage")
        with pytest.raises(SidecarError):
            TransactionMatrix.load(saved)

    def test_inconsistent_shapes_rejected(self, database, saved):
        # Overwrite the offsets with a wrong-length array.
        np.save(sidecar_paths(saved)["offsets"], np.zeros(99, dtype=np.int64))
        with pytest.raises(SidecarError, match="inconsistent"):
            TransactionMatrix.load(saved)

    def test_save_overwrites_previous_sidecar(self, database, tmp_path):
        prefix = tmp_path / "region"
        database.matrix().save(prefix, fingerprint="one")
        database.matrix().save(prefix, fingerprint="two")
        TransactionMatrix.load(prefix, expected_fingerprint="two")
        with pytest.raises(SidecarError):
            TransactionMatrix.load(prefix, expected_fingerprint="one")
