"""Property tests: all miners × all engines produce identical pattern sets.

The three miners (Apriori, Eclat, FP-Growth) are interchangeable by
contract, and each now has two counting engines -- the historical
pure-Python path and the packed-bitset ``TransactionMatrix`` path.  These
tests drive all six combinations over randomized transaction databases and
several ``min_support`` / ``max_length`` settings, asserting identical
itemsets *and* identical (absolute and relative) supports, with the
pure-Python FP-Growth run as the reference semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.apriori import AprioriMiner
from repro.mining.eclat import EclatMiner
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase

MINERS = (AprioriMiner, EclatMiner, FPGrowthMiner)
ENGINES = ("python", "bitset")

ITEMS = [f"item{k:02d}" for k in range(12)]

transactions_strategy = st.lists(
    st.lists(st.sampled_from(ITEMS), min_size=1, max_size=6),
    min_size=1,
    max_size=30,
)


def _signature(result):
    """Everything that must agree: items, absolute and relative supports."""
    return {
        pattern.items: (pattern.absolute_support, pattern.support)
        for pattern in result
    }


@settings(max_examples=40, deadline=None)
@given(
    transactions=transactions_strategy,
    min_support=st.sampled_from([0.05, 0.15, 0.3, 0.6]),
    max_length=st.sampled_from([1, 2, 3, None]),
)
def test_all_miners_and_engines_agree(transactions, min_support, max_length):
    database = TransactionDatabase(transactions)
    reference = _signature(
        FPGrowthMiner(min_support, max_length=max_length, engine="python").mine(database)
    )
    for miner_cls in MINERS:
        for engine in ENGINES:
            miner = miner_cls(min_support, max_length=max_length, engine=engine)
            assert _signature(miner.mine(database)) == reference, (
                miner_cls.__name__,
                engine,
            )


@settings(max_examples=15, deadline=None)
@given(transactions=transactions_strategy, min_support=st.sampled_from([0.1, 0.25]))
def test_bitset_results_sorted_identically(transactions, min_support):
    """Full MiningResult equality: ordering and metadata, not just the sets."""
    database = TransactionDatabase(transactions)
    for miner_cls in MINERS:
        python = miner_cls(min_support, max_length=3, engine="python").mine(database)
        bitset = miner_cls(min_support, max_length=3, engine="bitset").mine(database)
        assert python == bitset


@pytest.mark.parametrize("miner_cls", MINERS)
def test_unknown_engine_rejected(miner_cls):
    from repro.errors import MiningError

    with pytest.raises(MiningError):
        miner_cls(0.2, engine="fortran")


@pytest.mark.parametrize("miner_cls", MINERS)
@pytest.mark.parametrize("engine", ENGINES)
def test_empty_database_yields_empty_result(miner_cls, engine):
    result = miner_cls(0.2, engine=engine).mine([])
    assert len(result) == 0
    assert result.n_transactions == 0
