"""Unit tests for transactions, patterns and mining results."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.itemsets import MiningResult, Pattern, TransactionDatabase


@pytest.fixture()
def transactions() -> TransactionDatabase:
    return TransactionDatabase(
        [
            {"soy sauce", "mirin", "heat"},
            {"soy sauce", "heat"},
            {"soy sauce", "mirin"},
            {"butter", "flour"},
        ]
    )


class TestTransactionDatabase:
    def test_length_and_iteration(self, transactions):
        assert len(transactions) == 4
        assert all(isinstance(t, frozenset) for t in transactions)
        assert transactions[0] == frozenset({"soy sauce", "mirin", "heat"})

    def test_empty_transactions_dropped(self):
        db = TransactionDatabase([{"a"}, set(), {"b"}])
        assert len(db) == 2

    def test_item_counts_and_vocabulary(self, transactions):
        counts = transactions.item_counts()
        assert counts["soy sauce"] == 3
        assert counts["butter"] == 1
        assert transactions.vocabulary() == {"soy sauce", "mirin", "heat", "butter", "flour"}

    def test_support(self, transactions):
        assert transactions.support(["soy sauce"]) == pytest.approx(0.75)
        assert transactions.support(["soy sauce", "mirin"]) == pytest.approx(0.5)
        assert transactions.support(["missing"]) == 0.0
        assert transactions.support([]) == 1.0
        assert TransactionDatabase([]).support(["x"]) == 0.0

    def test_minimum_count(self, transactions):
        assert transactions.minimum_count(0.5) == 2
        assert transactions.minimum_count(0.2) == 1
        assert transactions.minimum_count(1.0) == 4
        with pytest.raises(MiningError):
            transactions.minimum_count(0.0)
        with pytest.raises(MiningError):
            transactions.minimum_count(1.5)

    def test_from_recipes(self, toy_recipes):
        db = TransactionDatabase.from_recipes(toy_recipes)
        assert len(db) == len(toy_recipes)
        with pytest.raises(MiningError):
            TransactionDatabase.from_recipes([object()])

    def test_equality(self, transactions):
        same = TransactionDatabase(list(transactions))
        assert same == transactions
        assert transactions != TransactionDatabase([{"x"}])


class TestPattern:
    def test_basic_properties(self):
        pattern = Pattern(frozenset({"soy sauce", "heat"}), support=0.5, absolute_support=2)
        assert pattern.length == 2
        assert not pattern.is_singleton
        assert pattern.sorted_items() == ("heat", "soy sauce")
        assert pattern.as_string() == "heat + soy sauce"
        assert pattern.contains("heat")
        assert "support=0.500" in str(pattern)

    def test_validation(self):
        with pytest.raises(MiningError):
            Pattern(frozenset(), support=0.5, absolute_support=1)
        with pytest.raises(MiningError):
            Pattern(frozenset({"a"}), support=0.0, absolute_support=1)
        with pytest.raises(MiningError):
            Pattern(frozenset({"a"}), support=0.5, absolute_support=0)

    def test_subpattern(self):
        small = Pattern(frozenset({"a"}), 0.5, 1)
        large = Pattern(frozenset({"a", "b"}), 0.4, 1)
        assert small.is_subpattern_of(large)
        assert not large.is_subpattern_of(small)

    def test_to_dict(self):
        pattern = Pattern(frozenset({"b", "a"}), 0.25, 1)
        assert pattern.to_dict() == {
            "items": ["a", "b"], "support": 0.25, "absolute_support": 1
        }


class TestMiningResult:
    def _result(self) -> MiningResult:
        patterns = [
            Pattern(frozenset({"soy sauce"}), 0.75, 3),
            Pattern(frozenset({"mirin"}), 0.5, 2),
            Pattern(frozenset({"soy sauce", "mirin"}), 0.5, 2),
            Pattern(frozenset({"heat"}), 0.5, 2),
        ]
        return MiningResult(patterns, n_transactions=4, min_support=0.4, algorithm="test")

    def test_ordering_is_support_then_length_then_lexicographic(self):
        result = self._result()
        assert result[0].items == frozenset({"soy sauce"})
        # Among the 0.5-support patterns the 2-item pattern comes first.
        assert result[1].items == frozenset({"soy sauce", "mirin"})
        assert [p.items for p in result][2:] == [frozenset({"heat"}), frozenset({"mirin"})]

    def test_top_and_top_pattern(self):
        result = self._result()
        assert result.top(2)[0].support == 0.75
        assert result.top_pattern().items == frozenset({"soy sauce"})
        assert result.top_pattern(prefer_compound=True).items == frozenset({"soy sauce", "mirin"})
        with pytest.raises(MiningError):
            result.top(0)

    def test_top_pattern_empty_result(self):
        empty = MiningResult([], n_transactions=4, min_support=0.5)
        assert empty.top_pattern() is None
        assert empty.top_pattern(prefer_compound=True) is None

    def test_filters(self):
        result = self._result()
        assert len(result.non_singletons()) == 1
        assert len(result.with_min_length(2)) == 1
        assert len(result.containing("mirin")) == 2
        with pytest.raises(MiningError):
            result.with_min_length(0)

    def test_views(self):
        result = self._result()
        assert frozenset({"soy sauce", "mirin"}) in result.itemsets()
        assert result.support_map()[frozenset({"heat"})] == 0.5
        assert "mirin + soy sauce" in result.string_patterns()
        assert len(result.to_dicts()) == 4

    def test_validation(self):
        with pytest.raises(MiningError):
            MiningResult([], n_transactions=-1, min_support=0.5)
        with pytest.raises(MiningError):
            MiningResult([], n_transactions=1, min_support=0.0)
