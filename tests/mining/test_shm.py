"""The shared-memory corpus arena: extraction identity, sidecars, lifecycle.

``CorpusMatrix`` packs every region's transaction matrix into one arena whose
region extraction is *exact*: slicing a region back out must reproduce the
matrix a direct ``TransactionMatrix`` compile of that region's transactions
would build -- same vocabulary, same packed bytes, same transaction-id
arrays.  ``SharedCorpusMatrix`` then maps the arena into ``/dev/shm`` with a
parent-owns-the-unlink lifecycle that never leaks a segment.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.errors import MiningError, SidecarError
from repro.mining.bitmatrix import TransactionMatrix
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase
from repro.mining.shm import (
    CorpusMatrix,
    RegionSpan,
    SharedCorpusMatrix,
    attach_corpus,
    live_segments,
)

ITEMS = [f"ing{k:02d}" for k in range(18)]


def _database(seed: int, n: int) -> TransactionDatabase:
    rng = np.random.default_rng(seed)
    return TransactionDatabase(
        [
            [ITEMS[j] for j in rng.choice(len(ITEMS), size=int(rng.integers(2, 7)), replace=False)]
            for _ in range(n)
        ]
    )


@pytest.fixture(scope="module")
def regions() -> dict[str, TransactionDatabase]:
    return {
        "Big": _database(seed=1, n=90),
        "Medium": _database(seed=2, n=33),
        "Single": _database(seed=3, n=1),
        "Tiny": _database(seed=4, n=7),
    }


@pytest.fixture(scope="module")
def corpus(regions) -> CorpusMatrix:
    return CorpusMatrix.from_transactions(regions)


def _assert_matrices_identical(extracted: TransactionMatrix, direct: TransactionMatrix):
    assert extracted.items == direct.items
    assert extracted.n_transactions == direct.n_transactions
    assert extracted.n_words == direct.n_words
    assert np.array_equal(extracted.packed_rows, direct.packed_rows)
    assert len(extracted.transaction_id_arrays()) == len(direct.transaction_id_arrays())
    for ours, theirs in zip(
        extracted.transaction_id_arrays(), direct.transaction_id_arrays()
    ):
        assert np.array_equal(ours, theirs)


class TestExtractionIdentity:
    def test_every_region_extracts_byte_identical(self, regions, corpus):
        for region, database in regions.items():
            extracted = corpus.region_matrix(region)
            direct = TransactionMatrix(database.transactions)
            _assert_matrices_identical(extracted, direct)

    def test_extracted_database_mines_identically(self, regions, corpus):
        miner = FPGrowthMiner(0.1, max_length=3)
        for region, database in regions.items():
            assert miner.mine(corpus.region_database(region)) == miner.mine(database)

    def test_empty_region_round_trips(self):
        corpus = CorpusMatrix.from_transactions(
            {"Empty": TransactionDatabase([]), "Full": _database(seed=9, n=12)}
        )
        empty = corpus.region_matrix("Empty")
        assert empty.n_transactions == 0
        assert empty.items == ()
        _assert_matrices_identical(
            corpus.region_matrix("Full"),
            TransactionMatrix(_database(seed=9, n=12).transactions),
        )

    def test_regions_sorted_and_span_lookup(self, corpus):
        assert corpus.regions == tuple(sorted(corpus.regions))
        span = corpus.span_of("Big")
        assert isinstance(span, RegionSpan)
        assert span.n_transactions == 90
        with pytest.raises(MiningError):
            corpus.span_of("Atlantis")

    def test_total_shape_accounting(self, regions, corpus):
        assert corpus.n_transactions == sum(len(db) for db in regions.values())
        assert corpus.total_words == sum(
            corpus.span_of(r).n_words for r in corpus.regions
        )


class TestCorpusSidecar:
    def test_save_load_round_trip(self, regions, corpus, tmp_path):
        prefix = tmp_path / "corpus.matrix"
        corpus.save(prefix, fingerprint="abc123")
        for mmap in (True, False):
            loaded = CorpusMatrix.load(
                prefix, mmap=mmap, expected_fingerprint="abc123"
            )
            assert loaded.regions == corpus.regions
            for region, database in regions.items():
                _assert_matrices_identical(
                    loaded.region_matrix(region),
                    TransactionMatrix(database.transactions),
                )

    def test_stale_fingerprint_rejected(self, corpus, tmp_path):
        prefix = tmp_path / "corpus.matrix"
        corpus.save(prefix, fingerprint="old")
        with pytest.raises(SidecarError, match="stale"):
            CorpusMatrix.load(prefix, expected_fingerprint="new")

    def test_missing_and_corrupt_sidecars_rejected(self, corpus, tmp_path):
        with pytest.raises(SidecarError):
            CorpusMatrix.load(tmp_path / "nowhere.matrix")
        prefix = tmp_path / "corpus.matrix"
        corpus.save(prefix)
        rows_path = prefix.with_name(prefix.name + ".rows.npy")
        rows_path.write_bytes(b"not an npy file")
        with pytest.raises(SidecarError):
            CorpusMatrix.load(prefix)

    def test_wrong_kind_rejected(self, corpus, tmp_path):
        prefix = tmp_path / "corpus.matrix"
        corpus.save(prefix)
        meta_path = prefix.with_name(prefix.name + ".meta.json")
        meta = json.loads(meta_path.read_text("utf-8"))
        meta["kind"] = "region"
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SidecarError):
            CorpusMatrix.load(prefix)


class TestSharedLifecycle:
    def test_create_attach_close_leaves_nothing(self, regions, corpus):
        shared = SharedCorpusMatrix.create(corpus)
        try:
            assert shared.descriptor.name in live_segments()
            # In the creating process the fork registry serves the arena.
            attached, mode = attach_corpus(shared.descriptor)
            assert mode == "inherited"
            for region, database in regions.items():
                _assert_matrices_identical(
                    attached.region_matrix(region),
                    TransactionMatrix(database.transactions),
                )
        finally:
            shared.close()
        assert not live_segments()
        shared.close()  # idempotent

    def test_context_manager_closes(self, corpus):
        with SharedCorpusMatrix.create(corpus) as shared:
            name = shared.descriptor.name
            assert name in live_segments()
        assert name not in live_segments()

    def test_arena_views_are_read_only(self, corpus):
        with SharedCorpusMatrix.create(corpus) as shared:
            with pytest.raises(ValueError):
                shared.view.rows[0, 0] = 255

    def test_vanished_segment_raises(self, corpus):
        shared = SharedCorpusMatrix.create(corpus)
        descriptor = shared.descriptor
        shared.close()
        with pytest.raises(MiningError, match="vanished"):
            attach_corpus(descriptor)

    def test_descriptor_is_picklable(self, corpus):
        with SharedCorpusMatrix.create(corpus) as shared:
            clone = pickle.loads(pickle.dumps(shared.descriptor))
            assert clone.name == shared.descriptor.name
            assert clone.items == shared.descriptor.items
            assert clone.spans == shared.descriptor.spans
