"""Determinism suite for the process-pool mining fan-out.

The contract of :mod:`repro.mining.parallel` is that the worker count is
*unobservable* in the output: for every miner × engine × worker-count combo
the merged results must be byte-identical (via the serve codec's canonical
JSON) to the serial legacy path, whether the tasks carry in-memory databases
or memory-mapped sidecar prefixes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import MiningError
from repro.mining.apriori import AprioriMiner
from repro.mining.eclat import EclatMiner
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase
from repro.mining.parallel import (
    WORKERS_AUTO,
    RegionTask,
    mine_corpus_with_report,
    mine_regions_parallel,
    mine_regions_with_report,
    resolve_workers,
    tasks_from_sidecars,
    tasks_from_transactions,
)
from repro.mining.shm import CorpusMatrix, live_segments
from repro.serve.codec import dumps, mining_to_dict

MINERS = (AprioriMiner, EclatMiner, FPGrowthMiner)
ENGINES = ("python", "bitset")
WORKER_COUNTS = (1, 2, 3, WORKERS_AUTO)

ITEMS = [f"item{k:02d}" for k in range(24)]


def _region_database(seed: int, n: int = 120) -> TransactionDatabase:
    rng = np.random.default_rng(seed)
    return TransactionDatabase(
        [
            [ITEMS[j] for j in rng.choice(len(ITEMS), size=int(rng.integers(3, 8)), replace=False)]
            for _ in range(n)
        ]
    )


@pytest.fixture(scope="module")
def regions() -> dict[str, TransactionDatabase]:
    return {f"Region{k}": _region_database(seed=k) for k in range(5)}


def _byte_form(results) -> str:
    return dumps(mining_to_dict(results))


class TestDeterminism:
    @pytest.mark.parametrize("miner_cls", MINERS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_parallel_output_byte_identical_to_serial(self, regions, miner_cls, engine):
        miner = miner_cls(0.08, max_length=3, engine=engine)
        tasks = tasks_from_transactions(regions)
        serial = mine_regions_parallel(tasks, miner, workers=0)
        serial_bytes = _byte_form(serial)
        assert any(len(result) for result in serial.values())
        for workers in WORKER_COUNTS:
            parallel = mine_regions_parallel(tasks, miner, workers=workers)
            assert parallel == serial
            assert list(parallel) == list(serial)  # merge order too
            assert _byte_form(parallel) == serial_bytes

    def test_sidecar_tasks_byte_identical_to_serial(self, regions, tmp_path):
        sidecars = {}
        for region, database in regions.items():
            prefix = tmp_path / region
            database.matrix().save(prefix, fingerprint="fp")
            sidecars[region] = prefix
        miner = FPGrowthMiner(0.08, max_length=3)
        serial = mine_regions_parallel(
            tasks_from_transactions(regions), miner, workers=0
        )
        for workers in (0, 2):
            mapped = mine_regions_parallel(
                tasks_from_sidecars(sidecars, fingerprint="fp"),
                miner,
                workers=workers,
            )
            assert _byte_form(mapped) == _byte_form(serial)

    def test_sidecar_tasks_never_compile(self, regions, tmp_path):
        sidecars = {}
        for region, database in regions.items():
            prefix = tmp_path / region
            database.matrix().save(prefix, fingerprint="fp")
            sidecars[region] = prefix
        _results, report = mine_regions_with_report(
            tasks_from_sidecars(sidecars, fingerprint="fp"),
            EclatMiner(0.08, max_length=3),
            workers=2,
        )
        assert report.compiles == 0
        assert report.pool_size == 2
        assert len(report.outcomes) == len(regions)

    def test_in_memory_tasks_compile_in_workers(self):
        # Fresh databases (no memoized matrix) force one compile per region.
        fresh = {f"R{k}": _region_database(seed=10 + k, n=40) for k in range(3)}
        _results, report = mine_regions_with_report(
            tasks_from_transactions(fresh), EclatMiner(0.1, max_length=2), workers=2
        )
        assert report.compiles == len(fresh)

    def test_corpus_arena_byte_identical_to_serial_tasks(self, regions):
        corpus = CorpusMatrix.from_transactions(regions)
        miner = FPGrowthMiner(0.08, max_length=3)
        serial = mine_regions_parallel(
            tasks_from_transactions(regions), miner, workers=0
        )
        for workers in (0, 2, WORKERS_AUTO):
            results, report = mine_corpus_with_report(corpus, miner, workers=workers)
            assert _byte_form(results) == _byte_form(serial)
            assert report.compiles == 0  # regions are sliced, never recompiled
        assert not live_segments()

    def test_pooled_run_reports_dispatch_and_shm_attaches(self, regions):
        _results, report = mine_regions_with_report(
            tasks_from_transactions(regions), FPGrowthMiner(0.1, max_length=2), workers=2
        )
        assert report.dispatch is not None
        assert report.dispatch.mode == "pool"
        assert report.dispatch.reason == "explicit-workers"
        payload = report.to_dict()
        assert payload["dispatch"]["workers"] == 2
        assert sum(payload["shm_attaches"].values()) >= 1
        assert not live_segments()

    def test_auto_dispatch_records_a_reason(self, regions):
        _results, report = mine_regions_with_report(
            tasks_from_transactions(regions),
            FPGrowthMiner(0.1, max_length=2),
            workers=WORKERS_AUTO,
        )
        assert report.workers == WORKERS_AUTO
        assert report.dispatch is not None
        assert report.dispatch.mode in {"serial", "pool"}
        assert report.dispatch.reason  # single-cpu / below-break-even / ...


class TestTaskValidation:
    def test_task_needs_exactly_one_source(self, regions):
        database = next(iter(regions.values()))
        with pytest.raises(MiningError):
            RegionTask("R", database=database, sidecar="somewhere")
        with pytest.raises(MiningError):
            RegionTask("R")

    def test_duplicate_region_rejected(self, regions):
        database = next(iter(regions.values()))
        tasks = [
            RegionTask("Same", database=database),
            RegionTask("Same", database=database),
        ]
        with pytest.raises(MiningError):
            mine_regions_parallel(tasks, FPGrowthMiner(0.2))

    def test_negative_workers_rejected(self):
        with pytest.raises(MiningError):
            resolve_workers(-1)

    def test_empty_task_list(self):
        assert mine_regions_parallel([], FPGrowthMiner(0.2), workers=2) == {}


class TestWorkerResolution:
    def test_none_defaults_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINING_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.delenv("REPRO_MINING_WORKERS")
        assert resolve_workers(None) == WORKERS_AUTO

    def test_environment_can_request_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINING_WORKERS", "auto")
        assert resolve_workers(None) == WORKERS_AUTO
        monkeypatch.setenv("REPRO_MINING_WORKERS", "")
        assert resolve_workers(None) == WORKERS_AUTO

    def test_garbage_environment_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINING_WORKERS", "many")
        assert resolve_workers(None) == WORKERS_AUTO

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINING_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_explicit_auto_and_int_strings_accepted(self):
        assert resolve_workers("auto") == WORKERS_AUTO
        assert resolve_workers("4") == 4

    def test_explicit_garbage_rejected(self):
        with pytest.raises(MiningError):
            resolve_workers("several")


class CrashingMiner:
    """Delegates to a real miner in the parent; hard-kills any pool worker.

    ``os._exit`` skips every Python-level cleanup, so from the executor's
    point of view the worker process simply vanished -- the same signature
    as an OOM kill or a segfault, and fully deterministic.
    """

    def __init__(self, inner, parent_pid: int) -> None:
        self.inner = inner
        self.parent_pid = parent_pid

    def mine(self, database):
        if os.getpid() != self.parent_pid:
            os._exit(1)
        return self.inner.mine(database)


class TestCrashRecovery:
    def test_killed_workers_regions_recovered_serially_byte_identical(self, regions):
        miner = FPGrowthMiner(0.08, max_length=3)
        tasks = tasks_from_transactions(regions)
        baseline = mine_regions_parallel(tasks, miner, workers=0)
        crashing = CrashingMiner(miner, os.getpid())
        results, report = mine_regions_with_report(tasks, crashing, workers=2)
        # Every region was lost to a killed worker and re-mined in-process;
        # the merged output is indistinguishable from a fault-free run.
        assert report.recovered_regions == tuple(sorted(regions))
        assert _byte_form(results) == _byte_form(baseline)
        assert report.to_dict()["recovered_regions"] == sorted(regions)
        # The parent owns the shm arena: even with every worker hard-killed
        # mid-batch, nothing is left behind in /dev/shm.
        assert not live_segments()

    def test_fault_free_run_reports_no_recoveries(self, regions):
        _results, report = mine_regions_with_report(
            tasks_from_transactions(regions), FPGrowthMiner(0.1, max_length=2), workers=2
        )
        assert report.recovered_regions == ()

    def test_worker_crash_without_recovery_names_lost_regions(self, regions):
        crashing = CrashingMiner(FPGrowthMiner(0.2), os.getpid())
        with pytest.raises(MiningError) as excinfo:
            mine_regions_parallel(
                tasks_from_transactions(regions), crashing, workers=2, recover=False
            )
        message = str(excinfo.value)
        assert "worker process died" in message
        for region in regions:
            assert region in message
        assert not live_segments()

    def test_ordinary_worker_exceptions_still_propagate(self, regions):
        # A worker that *raises* (stale sidecar, bad params) is not a crash:
        # the original error must surface, not a recovery or a MiningError
        # about lost regions.
        tasks = tasks_from_sidecars(
            {region: f"/nonexistent/{region}" for region in regions}
        )
        with pytest.raises(Exception) as excinfo:
            mine_regions_parallel(tasks, FPGrowthMiner(0.2), workers=2)
        assert "worker process died" not in str(excinfo.value)
