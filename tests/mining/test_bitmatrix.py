"""Unit tests for the packed-bitset transaction engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MiningError
from repro.mining.bitmatrix import TransactionMatrix
from repro.mining.itemsets import TransactionDatabase

TRANSACTIONS = [
    ["soy sauce", "mirin", "rice"],
    ["soy sauce", "mirin"],
    ["rice", "nori"],
    ["soy sauce"],
    ["butter", "flour", "rice"],
]


@pytest.fixture()
def database() -> TransactionDatabase:
    return TransactionDatabase(TRANSACTIONS)


@pytest.fixture()
def matrix(database) -> TransactionMatrix:
    return database.matrix()


class TestConstruction:
    def test_vocabulary_sorted_and_indexed(self, matrix):
        assert matrix.items == tuple(sorted(matrix.items))
        assert matrix.n_items == 6
        assert matrix.n_transactions == 5
        for index, item in enumerate(matrix.items):
            assert matrix.item_index[item] == index

    def test_memoized_on_database(self, database):
        assert database.matrix() is database.matrix()

    def test_packing_width(self, matrix):
        # 5 transactions pack into one byte per item row.
        assert matrix.n_words == 1

    def test_wide_database_packs_multiple_words(self):
        transactions = [[f"item{i:03d}"] for i in range(20)]
        matrix = TransactionDatabase(transactions).matrix()
        assert matrix.n_transactions == 20
        assert matrix.n_words == 3  # ceil(20 / 8)
        assert int(matrix.item_supports.sum()) == 20


class TestSupports:
    def test_item_supports_match_item_counts(self, database, matrix):
        counts = database.item_counts()
        for item, count in counts.items():
            assert matrix.support([item]) == count

    def test_itemset_supports_match_database(self, database, matrix):
        for itemset in (
            ["soy sauce", "mirin"],
            ["soy sauce", "rice"],
            ["rice"],
            ["butter", "flour"],
            ["soy sauce", "butter"],
        ):
            assert matrix.support(itemset) == database.absolute_support(itemset)

    def test_empty_itemset_supported_by_all(self, matrix):
        assert matrix.support([]) == 5

    def test_unknown_item_support_is_zero(self, matrix):
        assert matrix.support(["plutonium"]) == 0
        with pytest.raises(MiningError):
            matrix.ids_of(["plutonium"])

    def test_frequent_item_ids_ascending(self, matrix):
        ids = matrix.frequent_item_ids(2)
        assert list(ids) == sorted(ids)
        for item_id in ids:
            assert matrix.item_supports[item_id] >= 2

    def test_batch_candidate_counts(self, database, matrix):
        pairs = [
            matrix.ids_of(["soy sauce", "mirin"]),
            matrix.ids_of(["soy sauce", "rice"]),
            matrix.ids_of(["rice", "nori"]),
        ]
        counts = matrix.counts_of_candidates(pairs)
        expected = [
            database.absolute_support(["soy sauce", "mirin"]),
            database.absolute_support(["soy sauce", "rice"]),
            database.absolute_support(["rice", "nori"]),
        ]
        assert counts.tolist() == expected

    def test_batch_empty(self, matrix):
        assert matrix.counts_of_candidates([]).tolist() == []


class TestTidsets:
    def test_intersection_counts(self, database, matrix):
        soy = matrix.item_index["soy sauce"]
        mirin = matrix.item_index["mirin"]
        packed = matrix.intersect(matrix.tidset(soy), mirin)
        assert matrix.count(packed) == database.absolute_support(["soy sauce", "mirin"])

    def test_tidset_rows_read_only(self, matrix):
        row = matrix.tidset(0)
        with pytest.raises(ValueError):
            row[0] = 0

    def test_transaction_id_arrays_roundtrip(self, matrix):
        rebuilt = [
            sorted(matrix.items[i] for i in ids.tolist())
            for ids in matrix.transaction_id_arrays()
        ]
        assert rebuilt == [sorted(set(t)) for t in TRANSACTIONS]


class TestRandomizedAgreement:
    def test_supports_agree_with_frozenset_scan(self):
        rng = np.random.default_rng(42)
        items = [f"i{k}" for k in range(25)]
        for _ in range(5):
            n = int(rng.integers(1, 40))
            transactions = [
                list(rng.choice(items, size=int(rng.integers(1, 8)), replace=False))
                for _ in range(n)
            ]
            database = TransactionDatabase(transactions)
            matrix = database.matrix()
            for _ in range(20):
                size = int(rng.integers(1, 4))
                itemset = list(rng.choice(items, size=size, replace=False))
                assert matrix.support(itemset) == database.absolute_support(itemset)
