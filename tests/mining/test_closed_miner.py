"""Parity suite for the direct closed-pattern miner.

``mine_closed`` must be observationally indistinguishable from the two-step
``closed_patterns(miner.mine(db), matrix=db.matrix())`` pipeline -- pattern
for pattern, support for support, byte for byte through the serve codec --
for every base algorithm, both engines, every ``max_length`` and any
transaction multiset (duplicated transactions manufacture the equal-support
ties that make closure checks subtle).  Hypothesis drives the databases;
the deterministic tests pin the corners the shrinker loves to find.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiningError
from repro.mining.apriori import AprioriMiner
from repro.mining.closed import closed_patterns
from repro.mining.closed_miner import ClosedPatternMiner, mine_closed
from repro.mining.eclat import EclatMiner
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase
from repro.mining.parallel import mine_regions_parallel, tasks_from_transactions
from repro.serve.codec import dumps, mining_to_dict

BASE_MINERS = {
    "fp-growth": FPGrowthMiner,
    "apriori": AprioriMiner,
    "eclat": EclatMiner,
}

VOCABULARY = tuple(f"i{k}" for k in range(8))

transactions_strategy = st.lists(
    st.frozensets(st.sampled_from(VOCABULARY), max_size=len(VOCABULARY)),
    max_size=24,
)


def _byte_form(result) -> str:
    return dumps(mining_to_dict({"R": result}))


def _reference(algorithm, engine, transactions, min_support, max_length):
    """The two-step pipeline: full frequent mine, then the closure filter."""
    database = TransactionDatabase(transactions)
    base = BASE_MINERS[algorithm](min_support, max_length=max_length, engine=engine)
    result = base.mine(database)
    return closed_patterns(result, matrix=database.matrix())


class TestHypothesisParity:
    @pytest.mark.parametrize("algorithm", sorted(BASE_MINERS))
    @pytest.mark.parametrize("engine", ("bitset", "python"))
    @settings(max_examples=60, deadline=None)
    @given(
        transactions=transactions_strategy,
        min_support=st.sampled_from((0.1, 0.34, 0.6, 1.0)),
        max_length=st.sampled_from((1, 2, 3, None)),
    )
    def test_direct_miner_byte_identical_to_filter(
        self, algorithm, engine, transactions, min_support, max_length
    ):
        direct = mine_closed(
            TransactionDatabase(transactions),
            min_support,
            max_length,
            engine=engine,
            algorithm=algorithm,
        )
        reference = _reference(algorithm, engine, transactions, min_support, max_length)
        assert _byte_form(direct) == _byte_form(reference)

    @settings(max_examples=60, deadline=None)
    @given(transactions=transactions_strategy)
    def test_engines_agree_with_each_other(self, transactions):
        database = TransactionDatabase(transactions)
        bitset = mine_closed(database, 0.2, 3, engine="bitset")
        python = mine_closed(database, 0.2, 3, engine="python")
        assert _byte_form(bitset) == _byte_form(python)


class TestDeterministicCorners:
    def test_support_ties_from_duplicated_transactions(self):
        # Every transaction duplicated: closure must still collapse the
        # equal-support chains to the unique closed sets.
        rows = [["a", "b", "c"], ["a", "b"], ["a", "c"], ["b", "c", "d"]]
        transactions = rows + rows + rows
        direct = mine_closed(transactions, 0.25, None)
        reference = _reference("fp-growth", "bitset", transactions, 0.25, None)
        assert _byte_form(direct) == _byte_form(reference)
        assert len(direct) > 0

    def test_empty_database(self):
        result = mine_closed(TransactionDatabase([]), 0.5)
        assert len(result) == 0
        assert result.n_transactions == 0
        assert result.algorithm == "fp-growth+closed"

    def test_algorithm_label_tracks_base(self):
        database = TransactionDatabase([["a", "b"], ["a"]])
        for algorithm in BASE_MINERS:
            result = mine_closed(database, 0.5, algorithm=algorithm)
            assert result.algorithm == f"{algorithm}+closed"

    def test_parallel_fanout_parity(self):
        regions = {
            "North": TransactionDatabase([["a", "b", "c"], ["a", "b"], ["c"]] * 8),
            "South": TransactionDatabase([["b", "c"], ["b", "c", "d"], ["d"]] * 8),
            "Empty-ish": TransactionDatabase([["z"]]),
        }
        miner = ClosedPatternMiner(0.2, max_length=3)
        serial = mine_regions_parallel(
            tasks_from_transactions(regions), miner, workers=0
        )
        for workers in (2, "auto"):
            fanned = mine_regions_parallel(
                tasks_from_transactions(regions), miner, workers=workers
            )
            assert dumps(mining_to_dict(fanned)) == dumps(mining_to_dict(serial))

    def test_miner_is_picklable(self):
        miner = ClosedPatternMiner(0.3, max_length=2, engine="python", algorithm="eclat")
        clone = pickle.loads(pickle.dumps(miner))
        database = TransactionDatabase([["a", "b"], ["a", "b"], ["b"]])
        assert clone.mine(database) == miner.mine(database)


class TestValidation:
    def test_bad_min_support(self):
        with pytest.raises(MiningError):
            ClosedPatternMiner(0.0)
        with pytest.raises(MiningError):
            ClosedPatternMiner(1.5)

    def test_bad_max_length(self):
        with pytest.raises(MiningError):
            ClosedPatternMiner(0.2, max_length=0)

    def test_bad_engine_and_algorithm(self):
        with pytest.raises(MiningError):
            ClosedPatternMiner(0.2, engine="gpu")
        with pytest.raises(MiningError):
            ClosedPatternMiner(0.2, algorithm="magic")
