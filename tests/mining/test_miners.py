"""Unit tests for FP-Growth plus brute-force and cross-miner verification."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiningError
from repro.mining.apriori import AprioriMiner, apriori
from repro.mining.eclat import EclatMiner, eclat
from repro.mining.fpgrowth import FPGrowthMiner, fpgrowth
from repro.mining.itemsets import TransactionDatabase


def brute_force_frequent(transactions, min_support, max_length=None):
    """Reference miner: enumerate every candidate subset (exponential)."""
    db = TransactionDatabase(transactions)
    n = len(db)
    if n == 0:
        return {}
    vocabulary = sorted(db.vocabulary())
    min_count = db.minimum_count(min_support)
    limit = max_length if max_length is not None else len(vocabulary)
    frequent = {}
    for size in range(1, min(limit, len(vocabulary)) + 1):
        for combo in combinations(vocabulary, size):
            count = db.absolute_support(combo)
            if count >= min_count:
                frequent[frozenset(combo)] = count
    return frequent


SIMPLE_TRANSACTIONS = [
    {"soy sauce", "mirin", "heat"},
    {"soy sauce", "heat"},
    {"soy sauce", "mirin"},
    {"butter", "flour", "heat"},
    {"butter", "flour"},
    {"soy sauce", "mirin", "heat"},
]


class TestFPGrowth:
    def test_known_small_example(self):
        result = fpgrowth(SIMPLE_TRANSACTIONS, min_support=0.5, max_length=None)
        supports = {tuple(sorted(p.items)): p.absolute_support for p in result}
        assert supports[("soy sauce",)] == 4
        assert supports[("heat",)] == 4
        assert supports[("mirin", "soy sauce")] == 3
        assert ("butter",) not in supports  # 2/6 < 0.5
        assert result.algorithm == "fp-growth"

    def test_matches_brute_force(self):
        expected = brute_force_frequent(SIMPLE_TRANSACTIONS, 0.3)
        result = fpgrowth(SIMPLE_TRANSACTIONS, min_support=0.3, max_length=None)
        mined = {p.items: p.absolute_support for p in result}
        assert mined == expected

    def test_max_length_bounds_patterns(self):
        result = fpgrowth(SIMPLE_TRANSACTIONS, min_support=0.3, max_length=1)
        assert all(p.is_singleton for p in result)
        longer = fpgrowth(SIMPLE_TRANSACTIONS, min_support=0.3, max_length=2)
        assert any(p.length == 2 for p in longer)
        assert all(p.length <= 2 for p in longer)

    def test_empty_database(self):
        result = fpgrowth([], min_support=0.2)
        assert len(result) == 0
        assert result.n_transactions == 0

    def test_nothing_frequent(self):
        result = fpgrowth([{"a"}, {"b"}, {"c"}, {"d"}], min_support=0.9)
        assert len(result) == 0

    def test_all_identical_transactions(self):
        result = fpgrowth([{"a", "b"}] * 5, min_support=0.5, max_length=None)
        assert {tuple(sorted(p.items)) for p in result} == {("a",), ("b",), ("a", "b")}
        assert all(p.support == 1.0 for p in result)

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            FPGrowthMiner(min_support=0.0)
        with pytest.raises(MiningError):
            FPGrowthMiner(min_support=1.5)
        with pytest.raises(MiningError):
            FPGrowthMiner(max_length=0)

    def test_supports_are_consistent(self):
        result = fpgrowth(SIMPLE_TRANSACTIONS, min_support=0.3, max_length=3)
        for pattern in result:
            assert pattern.support == pytest.approx(pattern.absolute_support / 6)
            assert pattern.support >= 0.3


class TestMinerParity:
    @pytest.mark.parametrize("min_support", [0.2, 0.34, 0.5, 0.75])
    def test_three_miners_agree_on_simple_data(self, min_support):
        fp = fpgrowth(SIMPLE_TRANSACTIONS, min_support, max_length=None)
        ap = apriori(SIMPLE_TRANSACTIONS, min_support, max_length=None)
        ec = eclat(SIMPLE_TRANSACTIONS, min_support, max_length=None)
        fp_map = {p.items: p.absolute_support for p in fp}
        ap_map = {p.items: p.absolute_support for p in ap}
        ec_map = {p.items: p.absolute_support for p in ec}
        assert fp_map == ap_map == ec_map

    def test_three_miners_agree_on_recipe_data(self, toy_db):
        transactions = toy_db.transactions_for_region("Japanese")
        for miner in (FPGrowthMiner(0.5, None), AprioriMiner(0.5, None), EclatMiner(0.5, None)):
            result = miner.mine(transactions)
            assert result.support_map()[frozenset({"soy sauce"})] == 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.sampled_from("abcdefg"), min_size=1, max_size=5),
            min_size=1,
            max_size=14,
        ),
        st.sampled_from([0.2, 0.3, 0.5]),
    )
    def test_property_miners_match_brute_force(self, transactions, min_support):
        expected = brute_force_frequent(transactions, min_support, max_length=3)
        for mine in (fpgrowth, apriori, eclat):
            result = mine(transactions, min_support=min_support, max_length=3)
            assert {p.items: p.absolute_support for p in result} == expected


class TestAprioriEclatSpecifics:
    def test_apriori_invalid_parameters(self):
        with pytest.raises(MiningError):
            AprioriMiner(min_support=2.0)
        with pytest.raises(MiningError):
            AprioriMiner(max_length=0)

    def test_eclat_invalid_parameters(self):
        with pytest.raises(MiningError):
            EclatMiner(min_support=-0.1)
        with pytest.raises(MiningError):
            EclatMiner(max_length=-1)

    def test_empty_inputs(self):
        assert len(apriori([], 0.5)) == 0
        assert len(eclat([], 0.5)) == 0

    def test_max_length_respected(self):
        for mine in (apriori, eclat):
            result = mine(SIMPLE_TRANSACTIONS, min_support=0.3, max_length=2)
            assert all(p.length <= 2 for p in result)
