"""Unit tests for association-rule generation."""

from __future__ import annotations

import math

import pytest

from repro.errors import MiningError
from repro.mining.fpgrowth import fpgrowth
from repro.mining.rules import AssociationRule, generate_rules, rules_to_dicts

TRANSACTIONS = [
    {"soy sauce", "mirin", "heat"},
    {"soy sauce", "mirin"},
    {"soy sauce", "heat"},
    {"soy sauce", "mirin", "heat"},
    {"butter", "flour"},
    {"butter", "flour"},
]


@pytest.fixture()
def mined():
    return fpgrowth(TRANSACTIONS, min_support=0.3, max_length=None)


class TestAssociationRule:
    def test_validation(self):
        with pytest.raises(MiningError):
            AssociationRule(frozenset(), frozenset({"a"}), 0.5, 0.5, 1.0, 0.0, 1.0)
        with pytest.raises(MiningError):
            AssociationRule(frozenset({"a"}), frozenset({"a"}), 0.5, 0.5, 1.0, 0.0, 1.0)

    def test_string_forms(self):
        rule = AssociationRule(
            frozenset({"mirin"}), frozenset({"soy sauce"}), 0.5, 1.0, 1.5, 0.1, math.inf
        )
        assert rule.as_string() == "mirin => soy sauce"
        assert "confidence=1.000" in str(rule)
        assert rule.items == frozenset({"mirin", "soy sauce"})
        payload = rule.to_dict()
        assert payload["antecedent"] == ["mirin"]
        assert payload["consequent"] == ["soy sauce"]


class TestGenerateRules:
    def test_confidence_and_lift_values(self, mined):
        rules = generate_rules(mined, min_confidence=0.0)
        by_key = {rule.as_string(): rule for rule in rules}
        rule = by_key["mirin => soy sauce"]
        # P(mirin)=0.5, P(soy)=4/6, P(both)=0.5 -> confidence 1.0, lift 1.5
        assert rule.confidence == pytest.approx(1.0)
        assert rule.lift == pytest.approx(1.5)
        assert rule.support == pytest.approx(0.5)
        assert rule.leverage == pytest.approx(0.5 - 0.5 * (4 / 6))
        assert math.isinf(rule.conviction)

    def test_min_confidence_filters(self, mined):
        strict = generate_rules(mined, min_confidence=0.95)
        relaxed = generate_rules(mined, min_confidence=0.2)
        assert len(strict) < len(relaxed)
        assert all(rule.confidence >= 0.95 for rule in strict)

    def test_min_lift_filters(self, mined):
        lifted = generate_rules(mined, min_confidence=0.0, min_lift=1.2)
        assert all(rule.lift >= 1.2 for rule in lifted)

    def test_rules_sorted_by_confidence(self, mined):
        rules = generate_rules(mined, min_confidence=0.0)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_singletons_produce_no_rules(self):
        result = fpgrowth(TRANSACTIONS, min_support=0.3, max_length=1)
        assert generate_rules(result) == []

    def test_invalid_parameters(self, mined):
        with pytest.raises(MiningError):
            generate_rules(mined, min_confidence=1.5)
        with pytest.raises(MiningError):
            generate_rules(mined, min_lift=-1)

    def test_rules_to_dicts(self, mined):
        rules = generate_rules(mined, min_confidence=0.5)
        payloads = rules_to_dicts(rules)
        assert len(payloads) == len(rules)
        assert all("confidence" in p for p in payloads)
