"""Unit tests for closed / maximal itemset filtering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MiningError
from repro.mining.closed import (
    closed_patterns,
    closed_patterns_naive,
    maximal_patterns,
    maximal_patterns_naive,
    redundancy_ratio,
)
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import MiningResult, TransactionDatabase

TRANSACTIONS = [
    {"a", "b", "c"},
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "d"},
    {"d"},
]


@pytest.fixture()
def mined():
    return fpgrowth(TRANSACTIONS, min_support=0.3, max_length=None)


class TestClosedPatterns:
    def test_closed_definition(self, mined):
        closed = closed_patterns(mined)
        closed_sets = closed.itemsets()
        # {b} has support 3, but {a, b} also has support 3 -> {b} is not closed.
        assert frozenset({"b"}) not in closed_sets
        assert frozenset({"a", "b"}) in closed_sets
        # {a} has support 4, no superset reaches 4 -> closed.
        assert frozenset({"a"}) in closed_sets

    def test_supports_preserved(self, mined):
        closed = closed_patterns(mined)
        original = mined.support_map()
        for pattern in closed:
            assert original[pattern.items] == pattern.support

    def test_every_frequent_support_recoverable(self, mined):
        """Closed itemsets are a lossless compression: each frequent itemset's
        support equals the maximum support of a closed superset."""
        closed = closed_patterns(mined)
        for pattern in mined:
            candidates = [
                c.absolute_support for c in closed if pattern.items <= c.items
            ]
            assert candidates
            assert max(candidates) == pattern.absolute_support

    def test_algorithm_tag(self, mined):
        assert closed_patterns(mined).algorithm.endswith("+closed")


class TestMaximalPatterns:
    def test_maximal_definition(self, mined):
        maximal = maximal_patterns(mined)
        maximal_sets = maximal.itemsets()
        all_sets = mined.itemsets()
        for items in maximal_sets:
            assert not any(items < other for other in all_sets)

    def test_maximal_subset_of_closed(self, mined):
        closed_sets = closed_patterns(mined).itemsets()
        maximal_sets = maximal_patterns(mined).itemsets()
        assert maximal_sets <= closed_sets

    def test_empty_result(self):
        empty = MiningResult([], n_transactions=5, min_support=0.3)
        assert len(closed_patterns(empty)) == 0
        assert len(maximal_patterns(empty)) == 0
        assert redundancy_ratio(empty) == 0.0


class TestEngineParity:
    """The tidset-popcount path must match the pure-Python baseline exactly."""

    transactions_strategy = st.lists(
        st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=5),
        min_size=1,
        max_size=24,
    )

    @settings(max_examples=60, deadline=None)
    @given(
        transactions=transactions_strategy,
        min_support=st.sampled_from([0.05, 0.2, 0.4]),
        max_length=st.sampled_from([1, 2, 3, None]),
    )
    def test_closed_and_maximal_match_naive(self, transactions, min_support, max_length):
        database = TransactionDatabase(transactions)
        mined = fpgrowth(database, min_support=min_support, max_length=max_length)
        matrix = database.matrix()
        assert closed_patterns(mined, matrix=matrix) == closed_patterns_naive(mined)
        assert maximal_patterns(mined, matrix=matrix) == maximal_patterns_naive(mined)

    def test_dispatch_without_matrix_is_naive(self, mined):
        assert closed_patterns(mined) == closed_patterns_naive(mined)
        assert maximal_patterns(mined) == maximal_patterns_naive(mined)

    def test_engine_closed_on_fixture(self, mined):
        matrix = TransactionDatabase(TRANSACTIONS).matrix()
        closed_sets = closed_patterns(mined, matrix=matrix).itemsets()
        assert frozenset({"b"}) not in closed_sets
        assert frozenset({"a", "b"}) in closed_sets
        assert frozenset({"a"}) in closed_sets

    def test_mismatched_matrix_rejected(self, mined):
        other = TransactionDatabase([{"a"}, {"b"}, {"a", "b", "c"}, {"d"}]).matrix()
        with pytest.raises(MiningError):
            closed_patterns(mined, matrix=other)

    def test_unknown_items_rejected(self, mined):
        other = TransactionDatabase([{"x", "y"}, {"z"}]).matrix()
        with pytest.raises(MiningError):
            closed_patterns(mined, matrix=other)

    def test_empty_result_engine_path(self):
        matrix = TransactionDatabase(TRANSACTIONS).matrix()
        empty = MiningResult([], n_transactions=5, min_support=0.3)
        assert len(closed_patterns(empty, matrix=matrix)) == 0
        assert len(maximal_patterns(empty, matrix=matrix)) == 0
        assert redundancy_ratio(empty, matrix=matrix) == 0.0

    def test_redundancy_ratio_engine_matches_naive(self, mined):
        matrix = TransactionDatabase(TRANSACTIONS).matrix()
        assert redundancy_ratio(mined, matrix=matrix) == redundancy_ratio(mined)


class TestRedundancyRatio:
    def test_ratio_bounds(self, mined):
        ratio = redundancy_ratio(mined)
        assert 0.0 <= ratio < 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.sets(st.sampled_from("abcde"), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_closed_is_superset_of_maximal(self, transactions):
        mined = fpgrowth(transactions, min_support=0.25, max_length=None)
        closed_sets = closed_patterns(mined).itemsets()
        maximal_sets = maximal_patterns(mined).itemsets()
        assert maximal_sets <= closed_sets <= mined.itemsets()
