"""Unit tests for closed / maximal itemset filtering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.closed import closed_patterns, maximal_patterns, redundancy_ratio
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import MiningResult

TRANSACTIONS = [
    {"a", "b", "c"},
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "d"},
    {"d"},
]


@pytest.fixture()
def mined():
    return fpgrowth(TRANSACTIONS, min_support=0.3, max_length=None)


class TestClosedPatterns:
    def test_closed_definition(self, mined):
        closed = closed_patterns(mined)
        closed_sets = closed.itemsets()
        # {b} has support 3, but {a, b} also has support 3 -> {b} is not closed.
        assert frozenset({"b"}) not in closed_sets
        assert frozenset({"a", "b"}) in closed_sets
        # {a} has support 4, no superset reaches 4 -> closed.
        assert frozenset({"a"}) in closed_sets

    def test_supports_preserved(self, mined):
        closed = closed_patterns(mined)
        original = mined.support_map()
        for pattern in closed:
            assert original[pattern.items] == pattern.support

    def test_every_frequent_support_recoverable(self, mined):
        """Closed itemsets are a lossless compression: each frequent itemset's
        support equals the maximum support of a closed superset."""
        closed = closed_patterns(mined)
        for pattern in mined:
            candidates = [
                c.absolute_support for c in closed if pattern.items <= c.items
            ]
            assert candidates
            assert max(candidates) == pattern.absolute_support

    def test_algorithm_tag(self, mined):
        assert closed_patterns(mined).algorithm.endswith("+closed")


class TestMaximalPatterns:
    def test_maximal_definition(self, mined):
        maximal = maximal_patterns(mined)
        maximal_sets = maximal.itemsets()
        all_sets = mined.itemsets()
        for items in maximal_sets:
            assert not any(items < other for other in all_sets)

    def test_maximal_subset_of_closed(self, mined):
        closed_sets = closed_patterns(mined).itemsets()
        maximal_sets = maximal_patterns(mined).itemsets()
        assert maximal_sets <= closed_sets

    def test_empty_result(self):
        empty = MiningResult([], n_transactions=5, min_support=0.3)
        assert len(closed_patterns(empty)) == 0
        assert len(maximal_patterns(empty)) == 0
        assert redundancy_ratio(empty) == 0.0


class TestRedundancyRatio:
    def test_ratio_bounds(self, mined):
        ratio = redundancy_ratio(mined)
        assert 0.0 <= ratio < 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.sets(st.sampled_from("abcde"), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_closed_is_superset_of_maximal(self, transactions):
        mined = fpgrowth(transactions, min_support=0.25, max_length=None)
        closed_sets = closed_patterns(mined).itemsets()
        maximal_sets = maximal_patterns(mined).itemsets()
        assert maximal_sets <= closed_sets <= mined.itemsets()
