"""Unit tests for the FP-tree data structure."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.fptree import FPNode, FPTree


@pytest.fixture()
def simple_tree() -> FPTree:
    """Classic textbook example: five transactions over items a, b, c, d."""
    transactions = [
        ["a", "b"],
        ["b", "c", "d"],
        ["a", "c", "d"],
        ["a", "b", "c"],
        ["a", "b", "c", "d"],
    ]
    # Item frequencies: a=4, b=4, c=4, d=3 -> rank a<b<c<d (ties lexicographic).
    order = {"a": 0, "b": 1, "c": 2, "d": 3}
    return FPTree.from_transactions(transactions, order)


class TestFPNode:
    def test_path_to_root(self):
        root = FPNode(None)
        a = root.add_child("a", count=1)
        b = a.add_child("b", count=1)
        c = b.add_child("c", count=1)
        assert c.path_to_root() == ["a", "b"]
        assert a.path_to_root() == []
        assert root.is_root
        assert not c.is_root


class TestFPTree:
    def test_counts_accumulate(self, simple_tree):
        assert simple_tree.n_transactions == 5
        assert simple_tree.item_count("a") == 4
        assert simple_tree.item_count("d") == 3
        assert simple_tree.item_count("missing") == 0

    def test_items_sorted_by_ascending_count(self, simple_tree):
        items = simple_tree.items()
        counts = [simple_tree.item_count(item) for item in items]
        assert counts == sorted(counts)

    def test_node_links_cover_all_occurrences(self, simple_tree):
        total = sum(node.count for node in simple_tree.nodes_of("c"))
        assert total == simple_tree.item_count("c")

    def test_conditional_pattern_base(self, simple_tree):
        base = simple_tree.conditional_pattern_base("d")
        # Every prefix path must end before 'd' and carry positive counts.
        assert base
        for path, count in base:
            assert "d" not in path
            assert count > 0
        assert sum(count for _path, count in base) == simple_tree.item_count("d")

    def test_shared_prefixes_are_compressed(self, simple_tree):
        # 5 transactions x up to 4 items = 17 item instances; the tree must be
        # strictly smaller because of prefix sharing.
        assert simple_tree.node_count() < 17

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert(["a", "b", "c"], count=2)
        tree.insert(["a", "b"], count=1)
        assert tree.has_single_path()
        path = tree.single_path()
        assert path == [("a", 3), ("b", 3), ("c", 2)]

    def test_single_path_false_when_branching(self, simple_tree):
        assert not simple_tree.has_single_path()
        with pytest.raises(MiningError):
            simple_tree.single_path()

    def test_empty_tree(self):
        tree = FPTree()
        assert tree.is_empty
        assert tree.has_single_path()
        assert tree.single_path() == []
        assert tree.items() == []

    def test_insert_rejects_non_positive_count(self):
        tree = FPTree()
        with pytest.raises(MiningError):
            tree.insert(["a"], count=0)

    def test_from_transactions_drops_unranked_items(self):
        tree = FPTree.from_transactions([["a", "zzz"], ["a"]], {"a": 0})
        assert tree.item_count("a") == 2
        assert tree.item_count("zzz") == 0
        assert tree.n_transactions == 2

    def test_from_transactions_counts_fully_filtered_transactions(self):
        tree = FPTree.from_transactions([["zzz"], ["a"]], {"a": 0})
        assert tree.n_transactions == 2
        assert tree.item_count("a") == 1
