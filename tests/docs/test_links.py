"""Docs gate: the README/docs link graph must stay intact in tier-1 too.

CI runs ``tools/check_links.py`` as its own step; this suite makes the same
guarantee locally (and unit-tests the checker, so the gate itself cannot rot
into a silent no-op).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocs:
    def test_front_door_files_exist(self):
        assert (REPO_ROOT / "README.md").is_file()
        for page in ("architecture", "serving", "compute-core",
                     "storage-engine", "parallel-mining"):
            assert (REPO_ROOT / "docs" / f"{page}.md").is_file(), page

    def test_readme_and_docs_have_no_broken_links(self):
        problems = []
        for path in checker.collect_targets([]):
            problems.extend(checker.check_file(path))
        assert problems == []

    def test_docs_pages_cross_link_each_other(self):
        """The four deep-dive pages and the overview must form one graph."""
        docs = REPO_ROOT / "docs"
        serving = (docs / "serving.md").read_text(encoding="utf-8")
        architecture = (docs / "architecture.md").read_text(encoding="utf-8")
        assert "architecture.md" in serving
        assert "storage-engine.md" in serving
        for page in ("compute-core.md", "storage-engine.md",
                     "parallel-mining.md", "serving.md"):
            assert page in architecture, f"architecture.md must link {page}"
        for page in ("compute-core.md", "storage-engine.md", "parallel-mining.md"):
            text = (docs / page).read_text(encoding="utf-8")
            assert "serving.md" in text or "architecture.md" in text, (
                f"{page} must link into the new overview/serving docs"
            )

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in ("architecture", "serving", "compute-core",
                     "storage-engine", "parallel-mining"):
            assert f"docs/{page}.md" in readme, f"README must link docs/{page}.md"


class TestCheckerItself:
    def test_missing_target_is_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [gone](missing.md)", encoding="utf-8")
        problems = checker.check_file(page)
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_bad_anchor_is_reported(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Real Heading\n", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](target.md#real-heading) [bad](target.md#not-there)",
            encoding="utf-8",
        )
        problems = checker.check_file(page)
        assert len(problems) == 1
        assert "not-there" in problems[0]

    def test_same_file_anchor_and_externals(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "# My Title\n[up](#my-title) [out](https://example.com/x) "
            "[broken](#nope)\n",
            encoding="utf-8",
        )
        problems = checker.check_file(page)
        assert len(problems) == 1
        assert "#nope" in problems[0]

    def test_links_inside_code_fences_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```\n[not a link](nowhere.md)\n```\nreal text\n", encoding="utf-8"
        )
        assert checker.check_file(page) == []

    def test_slugify_matches_github_rules(self):
        assert checker.slugify("The async serving front-end") == "the-async-serving-front-end"
        assert checker.slugify("Request coalescing (`AsyncAnalysisService`)") == (
            "request-coalescing-asyncanalysisservice"
        )
        assert checker.slugify("Tests and benchmarks") == "tests-and-benchmarks"
