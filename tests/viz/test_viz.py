"""Unit tests for ASCII dendrograms, tables and the report writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hierarchy import cluster_features
from repro.features.matrix import FeatureMatrix
from repro.viz.ascii_dendrogram import render_dendrogram, render_horizontal
from repro.viz.report import build_report, write_report
from repro.viz.tables import format_csv, format_markdown_table, format_table, format_value


@pytest.fixture()
def run():
    values = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 5.0], [5.5, 5.0]])
    features = FeatureMatrix(("A", "B", "C", "D"), ("x", "y"), values)
    return cluster_features(features)


class TestAsciiDendrogram:
    def test_render_contains_all_leaves_and_heights(self, run):
        text = render_dendrogram(run.dendrogram)
        for label in ("A", "B", "C", "D"):
            assert label in text
        assert "[h=" in text
        assert "(root)" in text

    def test_render_horizontal(self, run):
        text = render_horizontal(run.dendrogram, width=30)
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line and "#" in line for line in lines)

    def test_render_horizontal_width_validation(self, run):
        with pytest.raises(ValueError):
            render_horizontal(run.dendrogram, width=2)


class TestTables:
    def test_format_value(self):
        assert format_value(None) == ""
        assert format_value(True) == "yes"
        assert format_value(0.12345) == "0.123"
        assert format_value("text") == "text"
        assert format_value(7) == "7"

    def test_format_table_from_dicts(self):
        text = format_table(
            [{"region": "Japanese", "support": 0.451}, {"region": "UK", "support": 0.37}],
            ["region", "support"],
            title="Table I",
        )
        assert "Table I" in text
        assert "Japanese" in text
        assert "0.451" in text
        assert "---" in text.replace(" ", "")

    def test_format_table_from_sequences(self):
        text = format_table([("a", 1), ("b", 2)], ["name", "value"])
        assert "a" in text and "2" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table([("only one",)], ["c1", "c2"])

    def test_markdown_table(self):
        text = format_markdown_table([{"k": 1, "wcss": 10.0}], ["k", "wcss"])
        assert text.splitlines()[0] == "| k | wcss |"
        assert "| 1 | 10.000 |" in text

    def test_csv(self):
        text = format_csv([{"a": 1, "b": "x,y"}], ["a", "b"])
        assert text.splitlines()[0] == "a,b"
        assert '"x,y"' in text


class TestReport:
    def test_build_and_write_report(self, full_results, tmp_path):
        report = build_report(full_results)
        assert "# Hierarchical Clustering of World Cuisines" in report
        assert "## Table I" in report
        assert "## Figure 1" in report
        assert "Figure 2" in report
        assert "## Validation against geography" in report
        assert "Newick" in report
        # every cuisine appears somewhere in the report
        for region in full_results.regions():
            assert region in report

        path = write_report(full_results, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Hierarchical Clustering")
