"""Unit tests for tree-vs-geography comparison and claim checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeographyError
from repro.cluster.hierarchy import cluster_features
from repro.features.matrix import FeatureMatrix
from repro.geo.comparison import (
    canada_france_vs_us,
    compare_to_geography,
    compare_trees,
    india_north_africa_affinity,
)
from repro.geo.geocluster import geographic_clustering
from repro.geo.regions import region_coordinates


def _geographyish_features(noise: float, seed: int = 0) -> FeatureMatrix:
    """Features that are the region coordinates plus noise -- a tree built on
    them should agree with the geographic tree roughly in proportion to the
    noise level."""
    rng = np.random.default_rng(seed)
    coords = region_coordinates()
    labels = tuple(sorted(coords))
    values = np.array([coords[label] for label in labels], dtype=float)
    values = values + rng.normal(scale=noise, size=values.shape)
    return FeatureMatrix(labels, ("latitude", "longitude"), values)


class TestCompareTrees:
    def test_identical_runs_score_one(self):
        run = geographic_clustering()
        comparison = compare_trees(run, run)
        assert comparison.bakers_gamma == pytest.approx(1.0, abs=1e-9)
        assert all(v == pytest.approx(1.0) for v in comparison.fowlkes_mallows_by_k.values())
        assert all(v == pytest.approx(1.0) for v in comparison.adjusted_rand_by_k.values())

    def test_low_noise_scores_higher_than_high_noise(self):
        low_noise = cluster_features(_geographyish_features(1.0))
        high_noise = cluster_features(_geographyish_features(120.0))
        low = compare_to_geography(low_noise)
        high = compare_to_geography(high_noise)
        assert low.bakers_gamma > high.bakers_gamma
        assert low.mean_fowlkes_mallows() >= high.mean_fowlkes_mallows()

    def test_k_values_outside_range_skipped(self):
        run = geographic_clustering(["Japanese", "Korean", "Thai"])
        comparison = compare_trees(run, run, k_values=(2, 3, 25))
        assert set(comparison.fowlkes_mallows_by_k) == {2, 3}

    def test_label_mismatch_rejected(self):
        full = geographic_clustering()
        subset = geographic_clustering(["Japanese", "Korean", "Thai"])
        with pytest.raises(GeographyError):
            compare_trees(full, subset)

    def test_to_dict(self):
        run = geographic_clustering()
        payload = compare_to_geography(run).to_dict()
        assert set(payload) >= {"bakers_gamma", "fowlkes_mallows_by_k", "mean_fowlkes_mallows"}


class TestClaimChecks:
    def test_geography_tree_fails_canada_france_claim(self):
        """On pure geography, Canada clusters with the US, not France -- the
        paper's point is that the cuisine trees deviate from this."""
        run = geographic_clustering()
        check = canada_france_vs_us(run)
        assert not check.holds
        assert check.details["canada_us"] < check.details["canada_france"]

    def test_claim_holds_when_distances_support_it(self):
        coords = dict(region_coordinates())
        # Counterfactual geography: move Canada next to France.
        coords["Canadian"] = (47.0, 3.0)
        run = geographic_clustering(coordinates=coords)
        assert canada_france_vs_us(run).holds

    def test_india_claim_on_geography_fails(self):
        run = geographic_clustering()
        check = india_north_africa_affinity(run)
        assert not check.holds
        assert set(check.details) == {
            "india_northern_africa", "india_thai", "india_southeast_asian"
        }

    def test_missing_regions_rejected(self):
        run = geographic_clustering(["Japanese", "Korean", "Thai"])
        with pytest.raises(GeographyError):
            canada_france_vs_us(run)
        with pytest.raises(GeographyError):
            india_north_africa_affinity(run)

    def test_claim_check_to_dict(self):
        run = geographic_clustering()
        payload = canada_france_vs_us(run).to_dict()
        assert set(payload) == {"claim", "holds", "details"}
