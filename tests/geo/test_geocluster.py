"""Unit tests for geographic clustering (Figure 6)."""

from __future__ import annotations

import pytest

from repro.errors import GeographyError
from repro.geo.geocluster import geographic_clustering, geographic_distance_matrix


class TestGeographicDistanceMatrix:
    def test_all_regions_by_default(self):
        distances = geographic_distance_matrix()
        assert len(distances.labels) == 26
        assert distances.metric == "haversine-km"
        assert distances.distance("French", "UK") < distances.distance("French", "Japanese")

    def test_subset(self):
        distances = geographic_distance_matrix(["Japanese", "Korean", "UK"])
        assert set(distances.labels) == {"Japanese", "Korean", "UK"}

    def test_custom_coordinates(self):
        distances = geographic_distance_matrix(
            coordinates={"A": (0.0, 0.0), "B": (0.0, 10.0), "C": (50.0, 0.0)}
        )
        assert distances.distance("A", "B") < distances.distance("A", "C")

    def test_missing_custom_coordinates_rejected(self):
        with pytest.raises(GeographyError):
            geographic_distance_matrix(["A", "B"], coordinates={"A": (0.0, 0.0)})

    def test_requires_two_regions(self):
        with pytest.raises(GeographyError):
            geographic_distance_matrix(["Japanese"])


class TestGeographicClustering:
    def test_full_tree(self):
        run = geographic_clustering()
        assert len(run.dendrogram.leaf_order()) == 26
        assert run.method == "average"

    def test_neighbouring_regions_merge_before_distant_ones(self):
        run = geographic_clustering()
        cophenetic = run.dendrogram.cophenetic_distances()
        assert cophenetic.distance("Korean", "Japanese") < cophenetic.distance(
            "Korean", "Mexican"
        )
        assert cophenetic.distance("UK", "Irish") < cophenetic.distance("UK", "Thai")
        assert cophenetic.distance("Canadian", "US") < cophenetic.distance(
            "Canadian", "French"
        )

    def test_continental_blocks_at_coarse_cut(self):
        run = geographic_clustering()
        assignment = run.flat_clusters(4)
        # European cuisines should share a flat cluster at a coarse cut.
        assert assignment["French"] == assignment["Deutschland"] == assignment["Italian"]
        # East Asia should be separated from Europe.
        assert assignment["Japanese"] != assignment["French"]

    def test_alternative_linkage(self):
        run = geographic_clustering(["Japanese", "Korean", "Thai", "UK"], method="complete")
        assert run.method == "complete"
        assert len(run.dendrogram.leaf_order()) == 4
