"""Unit tests for region geography data."""

from __future__ import annotations

import pytest

from repro.errors import GeographyError
from repro.datagen.profiles import PAPER_REGION_NAMES
from repro.distances.haversine import haversine_km
from repro.geo.regions import (
    REGION_GEOGRAPHY,
    RegionGeography,
    continent_assignment,
    region_continents,
    region_coordinates,
)


class TestRegionGeography:
    def test_covers_all_26_paper_regions(self):
        assert set(REGION_GEOGRAPHY) == set(PAPER_REGION_NAMES)
        assert len(REGION_GEOGRAPHY) == 26

    def test_coordinates_are_valid(self):
        for geography in REGION_GEOGRAPHY.values():
            assert -90 <= geography.latitude <= 90
            assert -180 <= geography.longitude <= 180

    def test_invalid_coordinates_rejected(self):
        with pytest.raises(GeographyError):
            RegionGeography("X", 91.0, 0.0, "Nowhere")
        with pytest.raises(GeographyError):
            RegionGeography("X", 0.0, 181.0, "Nowhere")

    def test_geographic_sanity(self):
        """Coarse sanity checks on the centroid placement."""
        coords = region_coordinates()
        # European cuisines are near each other, far from East Asia.
        france_uk = haversine_km(coords["French"], coords["UK"])
        france_japan = haversine_km(coords["French"], coords["Japanese"])
        assert france_uk < 2000
        assert france_japan > 8000
        # Canada and the US are geographic neighbours.
        assert haversine_km(coords["Canadian"], coords["US"]) < 2500
        # Korea and Japan are close.
        assert haversine_km(coords["Korean"], coords["Japanese"]) < 1500


class TestRegionCoordinates:
    def test_default_returns_all_regions(self):
        coords = region_coordinates()
        assert len(coords) == 26
        assert all(len(v) == 2 for v in coords.values())

    def test_subset_request(self):
        coords = region_coordinates(["Japanese", "Thai"])
        assert set(coords) == {"Japanese", "Thai"}

    def test_unknown_region_rejected(self):
        with pytest.raises(GeographyError):
            region_coordinates(["Atlantis"])


class TestContinents:
    def test_region_continents(self):
        continents = region_continents()
        assert continents["Japanese"] == "Asia"
        assert continents["French"] == "Europe"
        assert continents["Mexican"] == "North America"

    def test_continent_assignment_is_flat_clustering(self):
        assignment = continent_assignment()
        assert set(assignment) == set(REGION_GEOGRAPHY)
        assert assignment["French"] == assignment["Italian"]
        assert assignment["French"] != assignment["Japanese"]

    def test_continent_assignment_custom_mapping(self):
        assignment = continent_assignment({"A": "X", "B": "X", "C": "Y"})
        assert assignment["A"] == assignment["B"] != assignment["C"]
