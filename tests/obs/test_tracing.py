"""Tracing spans: nesting, the trace ring, histograms, the disable gate."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import (
    TRACE_CAPACITY,
    clear_traces,
    get_registry,
    recent_traces,
    set_enabled,
    span,
)


class TestSpans:
    def test_root_span_lands_in_ring(self):
        with span("compute", key="abc") as current:
            current.set(regions=5)
        traces = recent_traces()
        assert len(traces) == 1
        root = traces[0]
        assert root["name"] == "compute"
        assert root["attributes"] == {"key": "abc", "regions": 5}
        assert root["duration_seconds"] >= 0.0

    def test_nesting_builds_a_tree(self):
        with span("outer"):
            with span("mid"):
                with span("leaf1"):
                    pass
            with span("leaf2"):
                pass
        traces = recent_traces()
        assert len(traces) == 1  # only the root publishes a trace
        root = traces[0]
        assert [child["name"] for child in root["children"]] == ["mid", "leaf2"]
        assert root["children"][0]["children"][0]["name"] == "leaf1"

    def test_exception_sets_error_attribute_and_propagates(self):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        root = recent_traces()[-1]
        assert root["attributes"]["error"] == "ValueError"
        assert root["duration_seconds"] is not None

    def test_decorator_form(self):
        @span("worker", kind="test")
        def work(x):
            return x * 2

        assert work(3) == 6
        assert work(4) == 8
        names = [trace["name"] for trace in recent_traces()]
        assert names == ["worker", "worker"]

    def test_span_durations_feed_the_histogram(self):
        with span("timed"):
            pass
        hist = get_registry().histogram(
            "repro_span_seconds",
            "Duration of named tracing spans in seconds.",
            ("span",),
        )
        _cumulative, total, count = hist.snapshot(span="timed")
        assert count == 1
        assert total >= 0.0

    def test_ring_is_bounded(self):
        for index in range(TRACE_CAPACITY + 10):
            with span(f"s{index}"):
                pass
        traces = recent_traces()
        assert len(traces) == TRACE_CAPACITY
        assert traces[-1]["name"] == f"s{TRACE_CAPACITY + 9}"
        assert traces[0]["name"] == "s10"  # oldest ten dropped

    def test_recent_traces_limit(self):
        for index in range(5):
            with span(f"s{index}"):
                pass
        limited = recent_traces(limit=2)
        assert [trace["name"] for trace in limited] == ["s3", "s4"]


class TestCoroutineIsolation:
    def test_concurrent_tasks_keep_separate_parent_chains(self):
        async def request(name):
            with span(name):
                await asyncio.sleep(0)
                with span(f"{name}.child"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(request("a"), request("b"))

        asyncio.run(main())
        roots = {trace["name"]: trace for trace in recent_traces()}
        assert set(roots) == {"a", "b"}
        for name, root in roots.items():
            assert [child["name"] for child in root.get("children", [])] == [
                f"{name}.child"
            ]


class TestDisableGate:
    def test_disabled_spans_record_nothing(self):
        set_enabled(False)
        with span("ghost") as current:
            current.set(x=1)  # the null span accepts set() silently
        set_enabled(True)
        assert recent_traces() == []

    def test_reenabled_mid_span_does_not_half_record(self):
        set_enabled(False)
        manager = span("late")
        with manager:
            set_enabled(True)
        assert recent_traces() == []
        clear_traces()
