"""Metrics primitives: counters, gauges, histograms, registry, exposition."""

from __future__ import annotations

import math
import re
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, get_registry, set_enabled

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse Prometheus text format into name -> {label pairs -> value}."""
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        labels = tuple(
            (name, value.replace("\\\\", "\\").replace('\\"', '"').replace("\\n", "\n"))
            for name, value in _LABEL_RE.findall(match.group("labels") or "")
        )
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        samples.setdefault(match.group("name"), {})[labels] = value
    return samples


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests_total", "Requests.", ("route",))
        assert counter.value(route="/a") == 0.0
        counter.inc(route="/a")
        counter.inc(2.5, route="/a")
        counter.inc(route="/b")
        assert counter.value(route="/a") == 3.5
        assert counter.value(route="/b") == 1.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total", "C.")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("c_total", "C.", ("mode",))
        with pytest.raises(ObservabilityError):
            counter.inc(region="x")
        with pytest.raises(ObservabilityError):
            counter.value()

    def test_thread_safety(self, registry):
        counter = registry.counter("hits_total", "Hits.")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(500)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("pool_size", "Pool.")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3.0
        gauge.inc(-1.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        cumulative, total, count = hist.snapshot()
        assert cumulative == [1, 2, 3]  # per-bound cumulative + the +Inf bucket
        assert total == pytest.approx(5.55)
        assert count == 3

    def test_bucket_validation(self, registry):
        with pytest.raises(ObservabilityError):
            registry.histogram("h1_seconds", "H.", buckets=())
        with pytest.raises(ObservabilityError):
            registry.histogram("h2_seconds", "H.", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h3_seconds", "H.", buckets=(1.0, math.inf))

    def test_le_label_reserved(self, registry):
        with pytest.raises(ObservabilityError):
            registry.histogram("h_seconds", "H.", ("le",))


class TestRegistry:
    def test_idempotent_registration(self, registry):
        first = registry.counter("c_total", "C.", ("mode",))
        second = registry.counter("c_total", "C.", ("mode",))
        assert first is second

    def test_conflicting_registration_rejected(self, registry):
        registry.counter("m_total", "M.")
        with pytest.raises(ObservabilityError):
            registry.gauge("m_total", "M.")
        registry.histogram("h_seconds", "H.", buckets=(1.0,))
        with pytest.raises(ObservabilityError):
            registry.histogram("h_seconds", "H.", buckets=(2.0,))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("0bad", "Bad.")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", "Bad label.", ("bad-label",))
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", "Bad label.", ("__reserved",))

    def test_reset_drops_series_keeps_registrations(self, registry):
        counter = registry.counter("c_total", "C.")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("c_total", "C.") is counter

    def test_snapshot_flat_form(self, registry):
        registry.counter("c_total", "C.", ("mode",)).inc(2, mode="pool")
        registry.gauge("g", "G.").set(7)
        registry.histogram("h_seconds", "H.", buckets=(1.0,)).observe(0.5)
        flat = registry.snapshot()
        assert flat['c_total{mode="pool"}'] == 2.0
        assert flat["g"] == 7.0
        assert flat["h_seconds_sum"] == 0.5
        assert flat["h_seconds_count"] == 1.0
        assert not any("bucket" in key for key in flat)


class TestDisableGate:
    def test_disabled_layer_is_a_no_op(self, registry):
        counter = registry.counter("c_total", "C.")
        gauge = registry.gauge("g", "G.")
        hist = registry.histogram("h_seconds", "H.", buckets=(1.0,))
        set_enabled(False)
        counter.inc()
        gauge.set(3)
        hist.observe(0.5)
        set_enabled(True)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert hist.snapshot() == ([0, 0], 0.0, 0)


class TestExpositionRoundTrip:
    @pytest.fixture
    def loaded(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests.", ("route", "code"))
        counter.inc(3, route="/q", code=200)
        counter.inc(route="/q", code=500)
        registry.gauge("bytes_resident", "Bytes.").set(1.5e9)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.01, 0.2, 0.7, 3.0):
            hist.observe(value)
        weird = registry.counter("odd_total", "Odd labels.", ("path",))
        weird.inc(path='a\\b"c\nd')
        return registry, parse_exposition(registry.render())

    def test_every_line_parses(self, loaded):
        _registry, samples = loaded
        assert "req_total" in samples
        assert "lat_seconds_bucket" in samples

    def test_counter_and_gauge_samples(self, loaded):
        _registry, samples = loaded
        assert samples["req_total"][(("route", "/q"), ("code", "200"))] == 3.0
        assert samples["req_total"][(("route", "/q"), ("code", "500"))] == 1.0
        assert samples["bytes_resident"][()] == 1.5e9

    def test_label_escaping_round_trips(self, loaded):
        _registry, samples = loaded
        assert samples["odd_total"][(("path", 'a\\b"c\nd'),)] == 1.0

    def test_histogram_invariants(self, loaded):
        _registry, samples = loaded
        buckets = {
            labels[-1][1]: value
            for labels, value in samples["lat_seconds_bucket"].items()
        }
        assert buckets["0.1"] == 1.0
        assert buckets["1"] == 3.0
        assert buckets["+Inf"] == 4.0  # cumulative, equals _count
        assert samples["lat_seconds_count"][()] == 4.0
        assert samples["lat_seconds_sum"][()] == pytest.approx(3.91)

    def test_global_registry_render_parses(self):
        registry = get_registry()
        registry.counter("smoke_total", "Smoke.").inc()
        parse_exposition(registry.render())

    def test_default_buckets_are_sorted_and_finite(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(math.isfinite(bound) for bound in DEFAULT_BUCKETS)
