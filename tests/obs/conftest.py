"""Observability tests run with recording force-enabled and clean state."""

from __future__ import annotations

import pytest

from repro.obs import clear_traces, get_registry, runtime, set_enabled


@pytest.fixture(autouse=True)
def obs_enabled_for_test():
    """Force recording on and reset global state around every test."""
    set_enabled(True)
    get_registry().reset()
    clear_traces()
    yield
    get_registry().reset()
    clear_traces()
    runtime._enabled = None  # back to the environment default
