"""Integration tests asserting the paper's qualitative findings (E8).

These tests check the *shape* of the paper's results on the synthetic corpus:

* Table I supports live in the paper's band and the headline items mostly
  agree;
* Figure 1 shows no pronounced elbow;
* the cuisine trees reproduce the Section VII claims (Canada ~ France rather
  than Canada ~ US; Indian Subcontinent ~ Northern Africa) on at least the
  pattern-based trees where the paper reports them;
* the authenticity tree agrees with geography at least as well as the
  pattern-based trees (the paper: "similar yet better results");
* East-Asian cuisines cluster together in the cuisine trees.
"""

from __future__ import annotations

import pytest

from repro.core.table1 import compare_with_paper


class TestTable1Shape:
    def test_supports_in_paper_band(self, full_results):
        for row in full_results.table1.rows:
            assert 0.20 <= row.support <= 0.70, row.region

    def test_pattern_counts_order_of_magnitude(self, full_results):
        for row in full_results.table1.rows:
            assert 5 <= row.n_patterns <= 400, row.region

    def test_headline_items_mostly_match_paper(self, full_results):
        comparison = compare_with_paper(full_results.table1)
        overlap = sum(1 for row in comparison if row["headline_item_overlap"])
        # >= 14 of 26 at the tiny test scale (0.02); the scale-0.05 benchmark
        # asserts >= 20.  The paper's own table has odd rows (e.g. French: skillet).
        assert overlap >= 14

    def test_recipe_counts_proportional_to_paper(self, full_results):
        comparison = compare_with_paper(full_results.table1)
        for row in comparison:
            ratio = row["measured_n_recipes"] / row["paper_n_recipes"]
            assert 0.01 <= ratio <= 0.1  # scale 0.02 with a floor of 20 recipes


class TestFigure1Shape:
    def test_no_pronounced_elbow(self, full_results):
        assert not full_results.elbow.has_clear_elbow

    def test_wcss_trends_downward(self, full_results):
        wcss = full_results.elbow.wcss_values()
        # K-means is a local optimiser; allow small upticks between adjacent k
        # but require a clear overall decrease.
        assert all(later <= earlier * 1.05 + 1e-9 for earlier, later in zip(wcss, wcss[1:]))
        assert wcss[-1] < wcss[0]


class TestSectionVIIClaims:
    def test_canada_france_claim_on_cuisine_trees(self, full_results):
        """Both techniques predict Canadian closer to French than to US."""
        holding = [
            checks[0].holds
            for name, checks in full_results.claim_checks.items()
            if name != "geography" and checks
        ]
        assert sum(holding) >= 3  # at least 3 of the 4 cuisine trees

    def test_canada_france_claim_fails_on_geography(self, full_results):
        geography_checks = full_results.claim_checks["geography"]
        assert not geography_checks[0].holds

    def test_india_northern_africa_affinity(self, full_results):
        holding = [
            checks[1].holds
            for name, checks in full_results.claim_checks.items()
            if name != "geography" and len(checks) > 1
        ]
        assert sum(holding) >= 2

    def test_east_asian_cuisines_cluster_together(self, full_results):
        cophenetic = full_results.figure3_cosine.dendrogram.cophenetic_distances()
        within = cophenetic.distance("Japanese", "Korean")
        across = cophenetic.distance("Japanese", "UK")
        assert within < across
        within2 = cophenetic.distance("Chinese and Mongolian", "Korean")
        across2 = cophenetic.distance("Chinese and Mongolian", "Scandinavian")
        assert within2 < across2


class TestGeographyValidation:
    def test_cuisine_trees_positively_related_to_geography(self, full_results):
        gammas = {
            name: comparison.bakers_gamma
            for name, comparison in full_results.geography_validation.items()
        }
        assert max(gammas.values()) > 0.3

    def test_authenticity_among_best_matches(self, full_results):
        """The paper reports the authenticity tree matching geography at least
        as well as the best pattern-based tree."""
        gammas = full_results.geography_validation
        authenticity = gammas["authenticity"].bakers_gamma
        pattern_best = max(
            gammas[name].bakers_gamma
            for name in ("patterns-euclidean", "patterns-cosine", "patterns-jaccard")
        )
        assert authenticity >= pattern_best - 0.15

    def test_fingerprints_contain_signature_ingredients(self, full_results):
        assert "soy sauce" in full_results.fingerprints["Japanese"].positive_items()
        assert "olive oil" in full_results.fingerprints["Greek"].positive_items()
        assert "cumin" in full_results.fingerprints["Northern Africa"].positive_items()
