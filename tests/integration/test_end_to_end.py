"""Integration tests: whole-pipeline behaviour on the generated corpus."""

from __future__ import annotations

import pytest

from repro.core.config import AnalysisConfig
from repro.core.pipeline import CuisineClusteringPipeline
from repro.datagen.generator import GeneratorConfig, SyntheticRecipeDBGenerator
from repro.datagen.profiles import default_profiles
from repro.mining.apriori import AprioriMiner
from repro.mining.eclat import EclatMiner
from repro.mining.fpgrowth import FPGrowthMiner
from repro.mining.itemsets import TransactionDatabase


class TestCorpusToMiningIntegration:
    def test_miners_agree_on_generated_cuisine(self, mini_corpus):
        transactions = TransactionDatabase(mini_corpus.transactions_for_region("Japanese"))
        fp = FPGrowthMiner(0.25, max_length=2).mine(transactions)
        ap = AprioriMiner(0.25, max_length=2).mine(transactions)
        ec = EclatMiner(0.25, max_length=2).mine(transactions)
        assert fp.support_map() == ap.support_map() == ec.support_map()
        assert len(fp) > 0

    def test_signature_pattern_mined_at_paper_threshold(self, mini_corpus):
        transactions = mini_corpus.transactions_for_region("Japanese")
        result = FPGrowthMiner(0.2, max_length=3).mine(transactions)
        assert frozenset({"soy sauce"}) in result.itemsets()

    def test_mining_respects_support_threshold(self, mini_corpus):
        transactions = TransactionDatabase(mini_corpus.transactions_for_region("Greek"))
        result = FPGrowthMiner(0.3, max_length=3).mine(transactions)
        for pattern in result:
            assert pattern.support >= 0.3
            assert transactions.support(pattern.items) == pytest.approx(pattern.support)


class TestSupportThresholdAblation:
    def test_lower_support_yields_more_patterns(self, mini_corpus):
        transactions = mini_corpus.transactions_for_region("Italian")
        counts = []
        for support in (0.4, 0.3, 0.2):
            counts.append(len(FPGrowthMiner(support, max_length=3).mine(transactions)))
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[-1] > counts[0]


class TestDeterminism:
    def test_pipeline_is_deterministic(self):
        profiles = {
            name: profile
            for name, profile in default_profiles().items()
            if name in ("Japanese", "Korean", "Italian", "Greek")
        }
        config = AnalysisConfig(seed=99, scale=0.02, elbow_k_max=4)

        def run_once():
            corpus = SyntheticRecipeDBGenerator(
                GeneratorConfig(seed=99, scale=0.02), profiles=profiles
            ).generate()
            return CuisineClusteringPipeline(config).run(corpus)

        first = run_once()
        second = run_once()
        assert first.table1.to_dicts() == second.table1.to_dicts()
        assert first.elbow.wcss_values() == second.elbow.wcss_values()
        assert (
            first.figure3_cosine.dendrogram.to_newick()
            == second.figure3_cosine.dendrogram.to_newick()
        )
        assert first.summary() == second.summary()


class TestScaleEnvironmentOverride:
    def test_env_scale_changes_corpus_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        config = AnalysisConfig.from_environment()
        small = CuisineClusteringPipeline(config).build_corpus()
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        larger = CuisineClusteringPipeline(AnalysisConfig.from_environment()).build_corpus()
        assert len(larger) > len(small)
