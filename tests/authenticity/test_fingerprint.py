"""Unit tests for cuisine fingerprints."""

from __future__ import annotations

import pytest

from repro.errors import FeatureError
from repro.authenticity.fingerprint import (
    cuisine_fingerprints,
    fingerprint_overlap,
)
from repro.authenticity.prevalence import prevalence_matrix
from repro.authenticity.relative import relative_prevalence


@pytest.fixture()
def fingerprints(toy_db):
    authenticity = relative_prevalence(prevalence_matrix(toy_db))
    return cuisine_fingerprints(authenticity, top_k=3)


class TestCuisineFingerprints:
    def test_one_fingerprint_per_cuisine(self, fingerprints, toy_db):
        assert set(fingerprints) == set(toy_db.region_names())

    def test_signature_items_in_positive_tail(self, fingerprints):
        assert "soy sauce" in fingerprints["Japanese"].positive_items()
        assert "butter" in fingerprints["UK"].positive_items()
        assert "olive oil" in fingerprints["Italian"].positive_items()

    def test_tails_have_requested_size(self, fingerprints):
        for fingerprint in fingerprints.values():
            assert len(fingerprint.most_authentic) == 3
            assert len(fingerprint.least_authentic) == 3

    def test_negative_tail_is_non_positive(self, fingerprints):
        for fingerprint in fingerprints.values():
            assert all(value <= 0 for _, value in fingerprint.least_authentic)

    def test_to_dict(self, fingerprints):
        payload = fingerprints["Japanese"].to_dict()
        assert payload["cuisine"] == "Japanese"
        assert len(payload["most_authentic"]) == 3

    def test_invalid_top_k(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        with pytest.raises(FeatureError):
            cuisine_fingerprints(authenticity, top_k=0)


class TestFingerprintOverlap:
    def test_self_overlap_is_one(self, fingerprints):
        japan = fingerprints["Japanese"]
        assert fingerprint_overlap(japan, japan) == 1.0

    def test_distinct_cuisines_have_low_overlap(self, fingerprints):
        overlap = fingerprint_overlap(fingerprints["Japanese"], fingerprints["UK"])
        assert 0.0 <= overlap < 0.5

    def test_symmetric(self, fingerprints):
        ab = fingerprint_overlap(fingerprints["Japanese"], fingerprints["Italian"])
        ba = fingerprint_overlap(fingerprints["Italian"], fingerprints["Japanese"])
        assert ab == ba

    def test_mini_corpus_related_cuisines_overlap_more(self, mini_corpus):
        """Korean and Japanese fingerprints share more items than Korean and UK."""
        authenticity = relative_prevalence(
            prevalence_matrix(mini_corpus, min_document_frequency=2)
        )
        fingerprints = cuisine_fingerprints(authenticity, top_k=10)
        close = fingerprint_overlap(fingerprints["Korean"], fingerprints["Japanese"])
        far = fingerprint_overlap(fingerprints["Korean"], fingerprints["UK"])
        assert close >= far
