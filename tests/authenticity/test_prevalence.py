"""Unit tests for the prevalence matrix (equation 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.authenticity.prevalence import (
    PrevalenceMatrix,
    prevalence_from_transactions,
    prevalence_matrix,
)
from repro.recipedb.models import EntityKind


class TestPrevalenceFromTransactions:
    def test_known_values(self):
        transactions = {
            "Japan": [{"soy", "rice"}, {"soy"}, {"rice"}],
            "Italy": [{"olive"}, {"olive", "rice"}],
        }
        matrix = prevalence_from_transactions(transactions)
        assert matrix.prevalence("Japan", "soy") == pytest.approx(2 / 3)
        assert matrix.prevalence("Japan", "olive") == 0.0
        assert matrix.prevalence("Italy", "olive") == pytest.approx(1.0)
        assert matrix.prevalence("Italy", "rice") == pytest.approx(0.5)

    def test_duplicate_items_in_one_recipe_count_once(self):
        transactions = {"X": [["soy", "soy", "rice"]]}
        matrix = prevalence_from_transactions(transactions)
        assert matrix.prevalence("X", "soy") == 1.0

    def test_document_frequency_filter(self):
        transactions = {
            "A": [{"common", "rare"}],
            "B": [{"common"}],
        }
        matrix = prevalence_from_transactions(transactions, min_document_frequency=2)
        assert "rare" not in matrix.items
        assert "common" in matrix.items

    def test_empty_input_rejected(self):
        with pytest.raises(FeatureError):
            prevalence_from_transactions({})
        with pytest.raises(FeatureError):
            prevalence_from_transactions({"A": [{"x"}]}, min_document_frequency=0)

    def test_filter_removing_everything_rejected(self):
        with pytest.raises(FeatureError):
            prevalence_from_transactions({"A": [{"x"}]}, min_document_frequency=5)


class TestPrevalenceMatrix:
    def _matrix(self) -> PrevalenceMatrix:
        return PrevalenceMatrix(
            cuisines=("A", "B"),
            items=("x", "y", "z"),
            values=np.array([[1.0, 0.5, 0.0], [0.2, 0.0, 0.8]]),
        )

    def test_shape_validation(self):
        with pytest.raises(FeatureError):
            PrevalenceMatrix(("A",), ("x",), np.zeros((2, 1)))
        with pytest.raises(FeatureError):
            PrevalenceMatrix(("A",), ("x",), np.array([[1.5]]))

    def test_lookups(self):
        matrix = self._matrix()
        assert matrix.prevalence("A", "y") == 0.5
        np.testing.assert_allclose(matrix.cuisine_vector("B"), [0.2, 0.0, 0.8])
        np.testing.assert_allclose(matrix.item_vector("x"), [1.0, 0.2])
        with pytest.raises(FeatureError):
            matrix.prevalence("C", "x")
        with pytest.raises(FeatureError):
            matrix.prevalence("A", "q")

    def test_mean_and_top_items(self):
        matrix = self._matrix()
        np.testing.assert_allclose(matrix.mean_item_prevalence(), [0.6, 0.25, 0.4])
        assert matrix.top_items("A", 2) == [("x", 1.0), ("y", 0.5)]
        with pytest.raises(FeatureError):
            matrix.top_items("A", 0)

    def test_restrict_items(self):
        restricted = self._matrix().restrict_items(["z", "x"])
        assert restricted.items == ("z", "x")
        assert restricted.prevalence("B", "z") == 0.8

    def test_to_dict(self):
        payload = self._matrix().to_dict()
        assert payload["cuisines"] == ["A", "B"]
        assert len(payload["values"]) == 2


class TestPrevalenceFromDatabase:
    def test_ingredient_only_by_default(self, toy_db):
        matrix = prevalence_matrix(toy_db)
        assert "soy sauce" in matrix.items
        assert "heat" not in matrix.items  # processes excluded by default
        assert matrix.prevalence("Japanese", "soy sauce") == pytest.approx(1.0)
        assert matrix.prevalence("UK", "butter") == pytest.approx(1.0)
        assert matrix.prevalence("UK", "soy sauce") == 0.0

    def test_all_kinds_when_requested(self, toy_db):
        matrix = prevalence_matrix(toy_db, kinds=None)
        assert "heat" in matrix.items
        assert "oven" in matrix.items

    def test_prevalence_values_are_probabilities(self, toy_db):
        matrix = prevalence_matrix(toy_db, kinds=(EntityKind.INGREDIENT,))
        assert np.all(matrix.values >= 0.0)
        assert np.all(matrix.values <= 1.0)
