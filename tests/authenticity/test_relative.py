"""Unit and property tests for relative prevalence (authenticity, equation 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import FeatureError
from repro.authenticity.prevalence import PrevalenceMatrix, prevalence_matrix
from repro.authenticity.relative import AuthenticityMatrix, relative_prevalence


def _prevalence(values: np.ndarray) -> PrevalenceMatrix:
    cuisines = tuple(f"c{i}" for i in range(values.shape[0]))
    items = tuple(f"i{j}" for j in range(values.shape[1]))
    return PrevalenceMatrix(cuisines=cuisines, items=items, values=values)


class TestRelativePrevalence:
    def test_known_values(self):
        prevalence = _prevalence(np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]]))
        authenticity = relative_prevalence(prevalence)
        # c0, item i0: own 1.0, others mean (0 + 0.5)/2 = 0.25 -> 0.75.
        assert authenticity.authenticity("c0", "i0") == pytest.approx(0.75)
        assert authenticity.authenticity("c1", "i0") == pytest.approx(0.0 - 0.75)
        assert authenticity.authenticity("c2", "i0") == pytest.approx(0.0)

    def test_single_cuisine_degenerates_to_prevalence(self):
        prevalence = _prevalence(np.array([[0.3, 0.7]]))
        authenticity = relative_prevalence(prevalence)
        np.testing.assert_allclose(authenticity.values, prevalence.values)

    def test_signature_items_have_positive_authenticity(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        assert authenticity.authenticity("Japanese", "soy sauce") > 0.5
        assert authenticity.authenticity("UK", "soy sauce") < 0.0
        assert authenticity.authenticity("Italian", "olive oil") > 0.5

    def test_most_and_least_authentic(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        most = [item for item, _ in authenticity.most_authentic("Japanese", 3)]
        assert "soy sauce" in most
        least_values = [v for _, v in authenticity.least_authentic("Japanese", 3)]
        assert all(v <= 0 for v in least_values)
        with pytest.raises(FeatureError):
            authenticity.most_authentic("Japanese", 0)

    def test_unknown_labels_rejected(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        with pytest.raises(FeatureError):
            authenticity.authenticity("Atlantis", "soy sauce")
        with pytest.raises(FeatureError):
            authenticity.authenticity("Japanese", "unobtainium")

    def test_feature_matrix_is_copy(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        features = authenticity.feature_matrix()
        features[0, 0] = 123.0
        assert authenticity.values[0, 0] != 123.0

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 6), st.integers(1, 8)),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    def test_property_columns_sum_to_zero(self, values):
        """Leave-one-out relative prevalence sums to zero over cuisines."""
        authenticity = relative_prevalence(_prevalence(values))
        column_sums = authenticity.values.sum(axis=0)
        np.testing.assert_allclose(column_sums, 0.0, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(FeatureError):
            AuthenticityMatrix(("a",), ("x", "y"), np.zeros((2, 2)))

    def test_to_dict(self, toy_db):
        payload = relative_prevalence(prevalence_matrix(toy_db)).to_dict()
        assert set(payload) == {"cuisines", "items", "values"}
