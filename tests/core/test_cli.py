"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datagen.generator import GeneratorConfig, SyntheticRecipeDBGenerator
from repro.datagen.profiles import default_profiles
from repro.recipedb.io_json import save_json


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    """A small on-disk corpus shared by the CLI tests (3 paper cuisines)."""
    profiles = {
        name: profile
        for name, profile in default_profiles().items()
        if name in ("Japanese", "Greek", "UK")
    }
    db = SyntheticRecipeDBGenerator(GeneratorConfig(seed=3, scale=0.03), profiles=profiles).generate()
    path = tmp_path_factory.mktemp("cli") / "corpus.json"
    save_json(db, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--scale", "0.1", "--min-support", "0.3", "mine"]
        )
        assert args.seed == 7
        assert args.scale == 0.1
        assert args.min_support == 0.3
        assert args.command == "mine"

    @pytest.mark.parametrize("command", ["analyze", "serve-warm", "serve-stats", "query"])
    def test_workers_flag(self, command):
        args = build_parser().parse_args([command, "--workers", "4"])
        assert args.workers == 4
        assert build_parser().parse_args([command]).workers is None


class TestGenerate:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        output = tmp_path / "corpus.jsonl"
        exit_code = main(["--scale", "0.01", "generate", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_unsupported_format(self, tmp_path, capsys):
        exit_code = main(["--scale", "0.01", "generate", str(tmp_path / "corpus.xml")])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestMine:
    def test_mine_prints_table1(self, corpus_file, capsys):
        exit_code = main(["--corpus", str(corpus_file), "mine"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table I (reproduced)" in out
        assert "Japanese" in out

    def test_mine_with_paper_comparison(self, corpus_file, capsys):
        exit_code = main(["--corpus", str(corpus_file), "mine", "--compare-paper"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Paper vs measured" in out
        assert "soy sauce" in out


class TestAnalyze:
    def test_analyze_outputs_summary_and_report(self, corpus_file, tmp_path, capsys):
        report = tmp_path / "report.md"
        summary = tmp_path / "summary.json"
        exit_code = main(
            [
                "--corpus", str(corpus_file),
                "analyze", "--json", "--report", str(report), "--summary-json", str(summary),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["n_regions"] == 3
        assert report.exists()
        assert "Table I" in report.read_text()
        assert json.loads(summary.read_text())["n_regions"] == 3

    def test_analyze_default_output_is_human_readable(self, corpus_file, capsys):
        exit_code = main(["--corpus", str(corpus_file), "analyze"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "analyzed" in out
        assert "cuisines" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)


class TestFigures:
    def test_figure1_prints_series(self, corpus_file, capsys):
        exit_code = main(["--corpus", str(corpus_file), "figures", "--figure", "figure1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "WCSS" in out or "wcss" in out

    def test_figure2_prints_dendrogram(self, corpus_file, capsys):
        exit_code = main(["--corpus", str(corpus_file), "figures", "--figure", "figure2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "metric=euclidean" in out
        assert "Japanese" in out
