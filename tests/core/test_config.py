"""Unit tests for the analysis configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.config import DEFAULT_CONFIG, AnalysisConfig


class TestAnalysisConfig:
    def test_defaults_match_paper_parameters(self):
        config = AnalysisConfig()
        assert config.min_support == 0.20  # the paper's support threshold
        assert config.seed == 2020
        assert set(config.distance_metrics) == {"euclidean", "cosine", "jaccard"}

    @pytest.mark.parametrize(
        "field,value",
        [
            ("seed", -1),
            ("scale", 0),
            ("min_support", 0.0),
            ("min_support", 1.5),
            ("max_pattern_length", 0),
            ("pattern_weighting", "tfidf"),
            ("linkage_method", "centroid"),
            ("distance_metrics", ()),
            ("elbow_k_min", 0),
            ("elbow_k_max", 0),
            ("authenticity_min_document_frequency", 0),
            ("validation_k_values", (1,)),
            ("fingerprint_top_k", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(**{field: value})

    def test_with_overrides(self):
        config = AnalysisConfig().with_overrides(scale=0.1, min_support=0.3)
        assert config.scale == 0.1
        assert config.min_support == 0.3
        assert config.seed == DEFAULT_CONFIG.seed
        with pytest.raises(ConfigurationError):
            AnalysisConfig().with_overrides(min_support=2.0)

    def test_to_dict_roundtrip_fields(self):
        payload = AnalysisConfig().to_dict()
        assert payload["min_support"] == 0.2
        assert payload["distance_metrics"] == ["euclidean", "cosine", "jaccard"]

    def test_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.4")
        monkeypatch.setenv("REPRO_SEED", "77")
        config = AnalysisConfig.from_environment()
        assert config.scale == 0.4
        assert config.seed == 77

    def test_from_environment_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.4")
        config = AnalysisConfig.from_environment(scale=0.9)
        assert config.scale == 0.9

    def test_from_environment_invalid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        with pytest.raises(ConfigurationError):
            AnalysisConfig.from_environment()
        monkeypatch.delenv("REPRO_SCALE")
        monkeypatch.setenv("REPRO_SEED", "x")
        with pytest.raises(ConfigurationError):
            AnalysisConfig.from_environment()

    def test_from_environment_without_variables(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert AnalysisConfig.from_environment() == AnalysisConfig()
