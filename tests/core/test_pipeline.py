"""Unit tests for the end-to-end pipeline and the results container."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.core.config import AnalysisConfig
from repro.core.pipeline import CuisineClusteringPipeline, run_full_analysis
from repro.recipedb.database import RecipeDatabase
from repro.recipedb.models import Recipe, Region


class TestPipelineStages:
    def test_build_corpus_uses_config(self):
        pipeline = CuisineClusteringPipeline(AnalysisConfig(seed=1, scale=0.02))
        corpus = pipeline.build_corpus()
        assert len(corpus.region_names()) == 26
        assert len(corpus) > 500

    def test_mine_patterns_per_region(self, mini_corpus):
        pipeline = CuisineClusteringPipeline(AnalysisConfig(scale=0.02))
        mining = pipeline.mine_patterns(mini_corpus)
        assert set(mining) == set(mini_corpus.region_names())
        assert all(len(result) > 0 for result in mining.values())
        assert all(result.min_support == 0.2 for result in mining.values())

    def test_mine_patterns_rejects_empty_region(self):
        db = RecipeDatabase()
        db.register_region(Region("Full"))
        db.register_region(Region("Empty"))
        db.add_recipe(Recipe(0, "dish", "Full", ingredients=("salt",)))
        pipeline = CuisineClusteringPipeline()
        with pytest.raises(PipelineError):
            pipeline.mine_patterns(db)

    def test_parallel_mining_matches_serial(self, mini_corpus):
        config = AnalysisConfig(scale=0.02)
        # workers=0 explicitly: the baseline must stay serial even when the
        # suite itself runs under REPRO_MINING_WORKERS (the CI 2-worker job).
        serial = CuisineClusteringPipeline(config, workers=0).mine_patterns(mini_corpus)
        parallel = CuisineClusteringPipeline(config, workers=2).mine_patterns(
            mini_corpus
        )
        assert serial == parallel
        assert list(serial) == list(parallel)

    def test_workers_default_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINING_WORKERS", "2")
        assert CuisineClusteringPipeline().workers == 2
        monkeypatch.delenv("REPRO_MINING_WORKERS")
        assert CuisineClusteringPipeline().workers == "auto"
        assert CuisineClusteringPipeline(workers=4).workers == 4
        assert CuisineClusteringPipeline(workers="auto").workers == "auto"

    def test_pattern_features_shape(self, mini_corpus):
        pipeline = CuisineClusteringPipeline(AnalysisConfig(scale=0.02))
        mining = pipeline.mine_patterns(mini_corpus)
        features = pipeline.build_pattern_features(mining)
        assert features.n_rows == len(mini_corpus.region_names())
        assert features.n_columns >= max(len(r) for r in mining.values())

    def test_geography_stage_requires_known_regions(self):
        db = RecipeDatabase()
        db.register_regions(["Nowhere1", "Nowhere2"])
        db.add_recipe(Recipe(0, "a", "Nowhere1", ingredients=("salt",)))
        db.add_recipe(Recipe(1, "b", "Nowhere2", ingredients=("salt",)))
        pipeline = CuisineClusteringPipeline()
        with pytest.raises(PipelineError):
            pipeline.run_geographic_clustering(db)

    def test_run_requires_two_regions(self):
        db = RecipeDatabase()
        db.register_region("Japanese")
        db.add_recipe(Recipe(0, "a", "Japanese", ingredients=("salt",)))
        with pytest.raises(PipelineError):
            CuisineClusteringPipeline().run(db)


class TestFullRun:
    def test_results_are_complete(self, full_results, full_corpus):
        results = full_results
        assert results.corpus_stats.n_recipes == len(full_corpus)
        assert set(results.mining_results) == set(full_corpus.region_names())
        assert len(results.table1.rows) == 26
        assert results.pattern_features.n_rows == 26
        assert len(results.clustering_runs()) == 5
        assert set(results.geography_validation) == {
            "patterns-euclidean", "patterns-cosine", "patterns-jaccard", "authenticity"
        }
        assert results.fihc.n_clusters >= 1
        assert set(results.fingerprints) == set(full_corpus.region_names())

    def test_run_for_lookup(self, full_results):
        assert full_results.run_for("figure2").metric == "euclidean"
        assert full_results.run_for("FIGURE4").metric == "jaccard"
        with pytest.raises(PipelineError):
            full_results.run_for("figure9")

    def test_best_geography_match(self, full_results):
        name, comparison = full_results.best_geography_match()
        assert name in full_results.geography_validation
        assert comparison.bakers_gamma == max(
            c.bakers_gamma for c in full_results.geography_validation.values()
        )

    def test_summary_is_json_friendly(self, full_results):
        import json

        summary = full_results.summary()
        encoded = json.loads(json.dumps(summary, default=str))
        assert encoded["n_regions"] == 26
        assert "claims" in encoded

    def test_claims_present_for_every_tree(self, full_results):
        assert set(full_results.claim_checks) == {
            "patterns-euclidean", "patterns-cosine", "patterns-jaccard",
            "authenticity", "geography",
        }
        for checks in full_results.claim_checks.values():
            assert len(checks) == 2

    def test_run_full_analysis_wrapper(self, full_corpus):
        results = run_full_analysis(
            AnalysisConfig(seed=2020, scale=0.02, elbow_k_max=4), database=full_corpus
        )
        assert len(results.elbow.k_values()) == 4
