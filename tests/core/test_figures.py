"""Unit tests for the per-figure builders."""

from __future__ import annotations

import pytest

from repro.core.config import AnalysisConfig
from repro.core.figures import (
    FIGURE_NAMES,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
)
from repro.core.pipeline import CuisineClusteringPipeline


@pytest.fixture(scope="module")
def pattern_features(mini_corpus_module):
    pipeline = CuisineClusteringPipeline(AnalysisConfig(scale=0.02, seed=7))
    mining = pipeline.mine_patterns(mini_corpus_module)
    return pipeline.build_pattern_features(mining)


@pytest.fixture(scope="module")
def mini_corpus_module(request):
    # Reuse the session-scoped mini corpus through the request mechanism so
    # this module-scoped fixture stays cheap.
    return request.getfixturevalue("mini_corpus")


class TestFigureNames:
    def test_all_six_figures_registered(self):
        assert set(FIGURE_NAMES) == {
            "figure1", "figure2", "figure3", "figure4", "figure5", "figure6"
        }


class TestFigure1:
    def test_elbow_series(self, pattern_features):
        config = AnalysisConfig(elbow_k_min=1, elbow_k_max=5)
        analysis = build_figure1(pattern_features, config)
        assert analysis.k_values()[0] == 1
        assert len(analysis.k_values()) == 5
        wcss = analysis.wcss_values()
        assert all(a >= b - 1e-9 for a, b in zip(wcss, wcss[1:]))


class TestPatternFigures:
    def test_figure2_euclidean(self, pattern_features):
        run = build_figure2(pattern_features)
        assert run.metric == "euclidean"
        assert sorted(run.labels) == sorted(pattern_features.row_labels)

    def test_figure3_cosine(self, pattern_features):
        assert build_figure3(pattern_features).metric == "cosine"

    def test_figure4_jaccard_binarizes(self, pattern_features):
        run = build_figure4(pattern_features)
        assert run.metric == "jaccard"
        assert set(run.features.values.flatten()) <= {0.0, 1.0}

    def test_figures_differ_across_metrics(self, pattern_features):
        euclidean = build_figure2(pattern_features)
        cosine = build_figure3(pattern_features)
        assert euclidean.distances.distances.tolist() != cosine.distances.distances.tolist()


class TestFigure5And6:
    def test_figure5_authenticity(self, mini_corpus_module):
        run = build_figure5(mini_corpus_module, AnalysisConfig(scale=0.02))
        assert sorted(run.labels) == sorted(mini_corpus_module.region_names())
        cophenetic = run.dendrogram.cophenetic_distances()
        # Culinarily close pairs should merge earlier than distant ones.
        assert cophenetic.distance("Japanese", "Korean") < cophenetic.distance(
            "Japanese", "UK"
        )

    def test_figure6_geography(self):
        run = build_figure6(["Japanese", "Korean", "UK", "Irish"])
        cophenetic = run.dendrogram.cophenetic_distances()
        assert cophenetic.distance("Japanese", "Korean") < cophenetic.distance(
            "Japanese", "UK"
        )
        assert cophenetic.distance("UK", "Irish") < cophenetic.distance("UK", "Korean")

    def test_figure6_custom_coordinates(self):
        run = build_figure6(
            ["A", "B", "C"],
            coordinates={"A": (0.0, 0.0), "B": (1.0, 1.0), "C": (50.0, 50.0)},
        )
        cophenetic = run.dendrogram.cophenetic_distances()
        assert cophenetic.distance("A", "B") < cophenetic.distance("A", "C")
