"""Unit tests for the Table I reproduction."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.core.table1 import build_table1, compare_with_paper
from repro.mining.fpgrowth import fpgrowth


@pytest.fixture()
def mining_results(toy_db):
    return {
        region: fpgrowth(toy_db.transactions_for_region(region), min_support=0.6)
        for region in toy_db.region_names()
    }


class TestBuildTable1:
    def test_rows_cover_all_regions(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        assert table.regions() == ["Italian", "Japanese", "UK"]
        assert table.min_support == 0.6

    def test_row_values(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        japan = table.row_for("Japanese")
        assert japan.n_recipes == 3
        assert "soy sauce" in japan.top_pattern
        assert japan.support == pytest.approx(1.0)
        assert japan.n_patterns == len(mining_results["Japanese"])

    def test_prefer_compound(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results, prefer_compound=True)
        uk = table.row_for("UK")
        assert "+" in uk.top_pattern

    def test_row_for_unknown_region(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        with pytest.raises(PipelineError):
            table.row_for("Atlantis")

    def test_empty_results_rejected(self, toy_db):
        with pytest.raises(PipelineError):
            build_table1(toy_db, {})

    def test_to_dicts(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        rows = table.to_dicts()
        assert len(rows) == 3
        assert set(rows[0]) == {"region", "n_recipes", "top_pattern", "support", "n_patterns"}


class TestCompareWithPaper:
    def test_only_paper_regions_compared(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        comparison = compare_with_paper(table)
        # Japanese, Italian and UK are all paper regions.
        assert {row["region"] for row in comparison} == {"Italian", "Japanese", "UK"}
        for row in comparison:
            assert set(row) >= {
                "paper_top_pattern", "measured_top_pattern",
                "paper_support", "measured_support", "headline_item_overlap",
            }

    def test_headline_overlap_flags(self, toy_db, mining_results):
        table = build_table1(toy_db, mining_results)
        comparison = {row["region"]: row for row in compare_with_paper(table)}
        assert comparison["Japanese"]["headline_item_overlap"]  # soy sauce matches
        assert comparison["UK"]["headline_item_overlap"]  # butter matches

    def test_full_pipeline_table_matches_paper_shape(self, full_results):
        """On the generated 26-cuisine corpus the reproduced Table I should
        agree with the paper on most headline items and stay within the
        paper's support range."""
        comparison = compare_with_paper(full_results.table1)
        assert len(comparison) == 26
        overlap = sum(1 for row in comparison if row["headline_item_overlap"])
        # the test corpus is tiny (scale 0.02, ~2.4k recipes) so small cuisines
        # are noisy; the scale-0.05 benchmark asserts >= 20 of 26
        assert overlap >= 14
        for row in full_results.table1.rows:
            assert 0.2 <= row.support <= 0.70
            assert row.n_patterns >= 1
