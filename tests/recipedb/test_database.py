"""Unit tests for the in-memory recipe database."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateRecordError,
    SchemaError,
    UnknownRecordError,
    ValidationError,
)
from repro.recipedb.database import RecipeDatabase
from repro.recipedb.models import EntityKind, Recipe, Region


class TestRegionManagement:
    def test_register_region_idempotent(self):
        db = RecipeDatabase()
        first = db.register_region(Region("Japanese", continent="Asia"))
        second = db.register_region("Japanese")
        assert first is second
        assert db.region_names() == ["Japanese"]
        assert db.has_region("Japanese")

    def test_register_regions_bulk(self):
        db = RecipeDatabase()
        db.register_regions(["A", "B", Region("C")])
        assert db.region_names() == ["A", "B", "C"]


class TestRecipeManagement:
    def test_add_and_get(self, toy_db):
        assert len(toy_db) == 9
        recipe = toy_db.get(0)
        assert recipe.region == "Japanese"
        assert 0 in toy_db
        assert toy_db.recipe_ids() == list(range(9))

    def test_duplicate_id_rejected(self, toy_db):
        with pytest.raises(DuplicateRecordError):
            toy_db.add_recipe(Recipe(0, "dup", "Japanese", ingredients=("x",)))

    def test_unregistered_region_rejected(self, toy_db):
        with pytest.raises(SchemaError):
            toy_db.add_recipe(Recipe(100, "new", "Atlantis", ingredients=("x",)))

    def test_unknown_get(self, toy_db):
        with pytest.raises(UnknownRecordError):
            toy_db.get(999)

    def test_remove_recipe_updates_indexes(self, toy_db):
        toy_db.remove_recipe(0)
        assert len(toy_db) == 8
        assert 0 not in toy_db
        assert toy_db.item_support("mirin", region="Japanese") == pytest.approx(0.5)

    def test_next_recipe_id(self, toy_db):
        assert toy_db.next_recipe_id() == 9
        assert RecipeDatabase().next_recipe_id() == 0

    def test_iteration_is_id_ordered(self, toy_db):
        ids = [recipe.recipe_id for recipe in toy_db]
        assert ids == sorted(ids)


class TestRegionViews:
    def test_recipes_in_region(self, toy_db):
        japanese = toy_db.recipes_in_region("Japanese")
        assert len(japanese) == 3
        assert all(r.region == "Japanese" for r in japanese)

    def test_unknown_region_rejected(self, toy_db):
        with pytest.raises(ValidationError):
            toy_db.recipes_in_region("Atlantis")

    def test_region_recipe_counts(self, toy_db):
        assert toy_db.region_recipe_counts() == {"Italian": 3, "Japanese": 3, "UK": 3}

    def test_region_counts_include_empty_regions(self):
        db = RecipeDatabase()
        db.register_region("Empty")
        assert db.region_recipe_counts() == {"Empty": 0}

    def test_transactions_for_region(self, toy_db):
        transactions = toy_db.transactions_for_region("Japanese")
        assert len(transactions) == 3
        assert all("soy sauce" in t for t in transactions)
        ingredient_only = toy_db.transactions_for_region(
            "Japanese", kinds=[EntityKind.INGREDIENT]
        )
        assert all("heat" not in t for t in ingredient_only)

    def test_transactions_by_region(self, toy_db):
        grouped = toy_db.transactions_by_region()
        assert set(grouped) == {"Italian", "Japanese", "UK"}
        assert sum(len(v) for v in grouped.values()) == 9


class TestSupports:
    def test_item_support_global_and_regional(self, toy_db):
        assert toy_db.item_support("soy sauce") == pytest.approx(3 / 9)
        assert toy_db.item_support("soy sauce", region="Japanese") == pytest.approx(1.0)
        assert toy_db.item_support("soy sauce", region="UK") == 0.0

    def test_itemset_support(self, toy_db):
        assert toy_db.itemset_support(["butter", "flour"], region="UK") == pytest.approx(2 / 3)
        assert toy_db.itemset_support(["butter", "flour"]) == pytest.approx(2 / 9)

    def test_ingredient_usage(self, toy_db):
        usage = toy_db.ingredient_usage()
        assert usage["soy sauce"] == 3
        assert usage["butter"] == 3


class TestFromRecipes:
    def test_auto_registers_regions(self, toy_recipes):
        db = RecipeDatabase.from_recipes(
            toy_recipes, region_metadata={"Japanese": "Asia"}
        )
        assert db.region_names() == ["Italian", "Japanese", "UK"]
        japanese = [r for r in db.regions() if r.name == "Japanese"][0]
        assert japanese.continent == "Asia"

    def test_explicit_region_list(self, toy_recipes):
        db = RecipeDatabase.from_recipes(toy_recipes, regions=["Japanese", "Italian", "UK"])
        assert len(db) == 9

    def test_vocabularies_track_inserts(self, toy_db):
        sizes = toy_db.vocabularies.sizes()
        assert sizes["ingredients"] > 0
        assert sizes["combined"] >= sizes["ingredients"]
