"""Unit tests for corpus statistics."""

from __future__ import annotations

import pytest

from repro.recipedb.stats import (
    corpus_statistics,
    region_statistics,
    summarise_distribution,
)


class TestSummariseDistribution:
    def test_empty(self):
        assert summarise_distribution([]) == {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}

    def test_single_value(self):
        summary = summarise_distribution([4.0])
        assert summary["mean"] == 4.0
        assert summary["std"] == 0.0

    def test_known_values(self):
        summary = summarise_distribution([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["std"] == pytest.approx(1.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0


class TestCorpusStatistics:
    def test_toy_corpus(self, toy_db):
        stats = corpus_statistics(toy_db)
        assert stats.n_recipes == 9
        assert stats.n_regions == 3
        assert stats.region_recipe_counts == {"Italian": 3, "Japanese": 3, "UK": 3}
        assert stats.recipes_without_utensils == 3
        assert stats.utensil_sparsity == pytest.approx(1 / 3)
        assert stats.mean_ingredients_per_recipe == pytest.approx(
            sum(r.n_ingredients for r in toy_db.recipes()) / 9
        )

    def test_to_dict_and_paper_comparison(self, toy_db):
        stats = corpus_statistics(toy_db)
        payload = stats.to_dict()
        assert payload["n_recipes"] == 9
        comparison = stats.paper_comparison()
        assert comparison["n_recipes"]["paper"] == 118071
        assert comparison["n_recipes"]["measured"] == 9
        assert set(comparison) >= {"n_regions", "n_unique_ingredients"}

    def test_generated_corpus_matches_paper_shape(self, full_corpus):
        stats = corpus_statistics(full_corpus)
        assert stats.n_regions == 26
        # per-recipe means should sit near the paper's ~10 / ~12 / ~3
        assert 7.0 <= stats.mean_ingredients_per_recipe <= 13.0
        assert 9.0 <= stats.mean_processes_per_recipe <= 15.0
        assert 1.5 <= stats.mean_utensils_per_recipe <= 4.5
        # utensil sparsity should be near 12.4%
        assert 0.05 <= stats.utensil_sparsity <= 0.25


class TestRegionStatistics:
    def test_region_breakdown(self, toy_db):
        japan = region_statistics(toy_db, "Japanese")
        assert japan.n_recipes == 3
        assert japan.n_unique_ingredients == 6
        assert japan.recipes_without_utensils == 1
        assert japan.mean_ingredients_per_recipe == pytest.approx(3.0)
        payload = japan.to_dict()
        assert payload["region"] == "Japanese"

    def test_all_regions_covered(self, toy_db):
        for region in toy_db.region_names():
            stats = region_statistics(toy_db, region)
            assert stats.n_recipes == 3
