"""Unit tests for the recipe query builder."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.recipedb.models import EntityKind
from repro.recipedb.query import RecipeQuery


class TestBuilderValidation:
    def test_in_region_requires_argument(self):
        with pytest.raises(QueryError):
            RecipeQuery().in_region()

    def test_containing_all_requires_items(self):
        with pytest.raises(QueryError):
            RecipeQuery().containing_all([])

    def test_limit_must_be_positive(self):
        with pytest.raises(QueryError):
            RecipeQuery().limit(0)

    def test_ingredient_count_bounds_validated(self):
        with pytest.raises(QueryError):
            RecipeQuery().with_ingredient_count(minimum=5, maximum=2)
        with pytest.raises(QueryError):
            RecipeQuery().with_ingredient_count(minimum=-1)

    def test_builder_is_immutable(self):
        base = RecipeQuery()
        refined = base.in_region("Japanese")
        assert base is not refined
        assert base._regions == ()


class TestExecution:
    def test_region_filter(self, toy_db):
        result = RecipeQuery().in_region("Japanese").execute(toy_db)
        assert len(result) == 3
        assert result.regions() == ["Japanese"]

    def test_multiple_regions(self, toy_db):
        result = RecipeQuery().in_region("Japanese", "UK").execute(toy_db)
        assert len(result) == 6

    def test_containing_all(self, toy_db):
        result = RecipeQuery().containing_all(["butter", "flour"]).execute(toy_db)
        assert len(result) == 2
        assert all("butter" in r.ingredients for r in result)

    def test_containing_any(self, toy_db):
        result = RecipeQuery().containing_any(["mirin", "basil"]).execute(toy_db)
        assert len(result) == 3

    def test_excluding(self, toy_db):
        result = RecipeQuery().in_region("Japanese").excluding(["mirin"]).execute(toy_db)
        assert len(result) == 1
        assert result[0].title == "soy rice bowl"

    def test_ingredient_count_filter(self, toy_db):
        result = RecipeQuery().with_ingredient_count(minimum=4).execute(toy_db)
        assert all(r.n_ingredients >= 4 for r in result)
        assert len(result) == 2

    def test_utensil_data_filter(self, toy_db):
        with_utensils = RecipeQuery().with_utensil_data(True).execute(toy_db)
        without = RecipeQuery().with_utensil_data(False).execute(toy_db)
        assert len(with_utensils) + len(without) == len(toy_db.recipes())
        assert all(r.has_utensils for r in with_utensils)

    def test_source_filter(self, toy_db):
        assert len(RecipeQuery().from_source("synthetic").execute(toy_db)) == 9
        assert len(RecipeQuery().from_source("other").execute(toy_db)) == 0

    def test_custom_predicate(self, toy_db):
        result = RecipeQuery().where(lambda r: "sugar" in r.ingredients).execute(toy_db)
        assert {r.title for r in result} == {"victoria sponge", "shortbread"}

    def test_limit(self, toy_db):
        result = RecipeQuery().limit(4).execute(toy_db)
        assert len(result) == 4
        assert result.ids() == [0, 1, 2, 3]

    def test_count(self, toy_db):
        assert RecipeQuery().in_region("Italian").count(toy_db) == 3

    def test_combined_filters(self, toy_db):
        query = (
            RecipeQuery()
            .in_region("UK")
            .containing_all(["butter"])
            .excluding(["bread crumbs"])
        )
        result = query.execute(toy_db)
        assert {r.title for r in result} == {"victoria sponge", "shortbread"}

    def test_result_transactions(self, toy_db):
        result = RecipeQuery().in_region("Japanese").execute(toy_db)
        transactions = result.transactions(kinds=[EntityKind.INGREDIENT])
        assert len(transactions) == 3
        assert all("heat" not in t for t in transactions)

    def test_database_query_helpers(self, toy_db):
        query = toy_db.query().in_region("Italian")
        assert len(toy_db.find(query)) == 3
