"""Unit tests for inverted and region indexes."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.recipedb.index import InvertedIndex, RegionIndex, build_entity_indexes
from repro.recipedb.models import EntityKind


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add(0, ["salt", "soy sauce"])
    idx.add(1, ["salt", "butter"])
    idx.add(2, ["soy sauce", "mirin"])
    return idx


class TestInvertedIndex:
    def test_postings_and_document_frequency(self, index):
        assert index.postings("salt") == frozenset({0, 1})
        assert index.document_frequency("soy sauce") == 2
        assert index.document_frequency("unknown") == 0

    def test_support(self, index):
        assert index.support("salt") == pytest.approx(2 / 3)
        assert index.support("unknown") == 0.0
        assert InvertedIndex().support("salt") == 0.0

    def test_boolean_algebra(self, index):
        assert index.all_of(["salt", "soy sauce"]) == frozenset({0})
        assert index.any_of(["butter", "mirin"]) == frozenset({1, 2})
        assert index.none_of(["salt"]) == frozenset({2})
        assert index.all_of([]) == frozenset({0, 1, 2})

    def test_itemset_support(self, index):
        assert index.itemset_support(["salt", "soy sauce"]) == pytest.approx(1 / 3)
        assert index.itemset_support(["unknown"]) == 0.0

    def test_top_items(self, index):
        top = index.top_items(2)
        assert top[0] in {("salt", 2), ("soy sauce", 2)}
        assert len(top) == 2
        with pytest.raises(QueryError):
            index.top_items(0)

    def test_remove(self, index):
        index.remove(0, ["salt", "soy sauce"])
        assert index.postings("salt") == frozenset({1})
        assert 0 not in index.indexed_ids

    def test_remove_last_posting_drops_item(self, index):
        index.remove(1, ["butter"])
        assert "butter" not in index
        assert index.document_frequency("butter") == 0

    def test_clear(self, index):
        index.clear()
        assert len(index) == 0
        assert index.indexed_ids == frozenset()

    def test_contains_and_len(self, index):
        assert "salt" in index
        assert "unknown" not in index
        assert len(index) == 4  # distinct items


class TestRegionIndex:
    def test_counts_and_regions(self):
        idx = RegionIndex()
        idx.add(0, "Japanese")
        idx.add(1, "Japanese")
        idx.add(2, "Italian")
        assert idx.counts() == {"Italian": 1, "Japanese": 2}
        assert idx.regions() == ["Italian", "Japanese"]
        assert "Japanese" in idx
        assert len(idx) == 2

    def test_remove(self):
        idx = RegionIndex()
        idx.add(0, "Japanese")
        idx.remove(0, "Japanese")
        assert "Japanese" not in idx
        idx.remove(5, "Unknown")  # removing from a missing region is a no-op

    def test_clear(self):
        idx = RegionIndex()
        idx.add(0, "Japanese")
        idx.clear()
        assert len(idx) == 0


def test_build_entity_indexes(toy_recipes):
    indexes = build_entity_indexes(toy_recipes)
    assert indexes[EntityKind.INGREDIENT].document_frequency("soy sauce") == 3
    assert indexes[EntityKind.PROCESS].document_frequency("bake") == 2
    assert indexes[EntityKind.UTENSIL].document_frequency("oven") == 2
    combined = indexes["combined"]
    assert combined.document_frequency("soy sauce") == 3
    assert combined.document_frequency("bake") == 2


def test_build_entity_indexes_accepts_mapping(toy_recipes):
    mapping = {recipe.recipe_id: recipe for recipe in toy_recipes}
    indexes = build_entity_indexes(mapping)
    assert indexes[EntityKind.INGREDIENT].document_frequency("butter") == 3
