"""Unit tests for JSON / JSONL / CSV persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import SerializationError
from repro.recipedb.io_csv import iter_csv, load_csv, save_csv
from repro.recipedb.io_json import (
    FORMAT_VERSION,
    iter_jsonl,
    load_json,
    load_jsonl,
    save_json,
    save_jsonl,
)


class TestJson:
    def test_roundtrip(self, toy_db, tmp_path):
        path = save_json(toy_db, tmp_path / "corpus.json", indent=2)
        loaded = load_json(path)
        assert len(loaded) == len(toy_db)
        assert loaded.region_names() == toy_db.region_names()
        assert loaded.get(0) == toy_db.get(0)

    def test_header_contains_version_and_regions(self, toy_db, tmp_path):
        path = save_json(toy_db, tmp_path / "corpus.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["n_recipes"] == 9
        assert {r["name"] for r in payload["regions"]} == {"Italian", "Japanese", "UK"}

    def test_region_continents_preserved(self, toy_db, tmp_path):
        path = save_json(toy_db, tmp_path / "corpus.json")
        loaded = load_json(path)
        japanese = [r for r in loaded.regions() if r.name == "Japanese"][0]
        assert japanese.continent == "Asia"

    def test_unsupported_version_rejected(self, toy_db, tmp_path):
        path = save_json(toy_db, tmp_path / "corpus.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "missing.json")


class TestJsonl:
    def test_roundtrip(self, toy_db, tmp_path):
        path = save_jsonl(toy_db, tmp_path / "corpus.jsonl")
        loaded = load_jsonl(path)
        assert len(loaded) == len(toy_db)
        assert loaded.get(3).title == toy_db.get(3).title

    def test_accepts_recipe_iterable(self, toy_recipes, tmp_path):
        path = save_jsonl(toy_recipes, tmp_path / "recipes.jsonl")
        assert len(list(iter_jsonl(path))) == len(toy_recipes)

    def test_blank_lines_skipped(self, toy_recipes, tmp_path):
        path = save_jsonl(toy_recipes[:2], tmp_path / "recipes.jsonl")
        path.write_text(path.read_text() + "\n\n")
        assert len(list(iter_jsonl(path))) == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"recipe_id": 0}\n')
        with pytest.raises(SerializationError):
            list(iter_jsonl(path))


class TestCsv:
    def test_roundtrip(self, toy_db, tmp_path):
        path = save_csv(toy_db, tmp_path / "corpus.csv")
        loaded = load_csv(path)
        assert len(loaded) == len(toy_db)
        assert loaded.get(6).ingredients == toy_db.get(6).ingredients
        assert loaded.get(8).utensils == ()

    def test_iter_csv_streams_recipes(self, toy_db, tmp_path):
        path = save_csv(toy_db, tmp_path / "corpus.csv")
        recipes = list(iter_csv(path))
        assert len(recipes) == 9
        assert recipes[0].region == "Japanese"

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("recipe_id,title\n0,x\n")
        with pytest.raises(SerializationError):
            list(iter_csv(path))

    def test_malformed_row_rejected(self, toy_db, tmp_path):
        path = save_csv(toy_db, tmp_path / "corpus.csv")
        content = path.read_text().splitlines()
        content.append("not-an-int,title,Japanese,salt,heat,wok,src")
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(SerializationError):
            list(iter_csv(path))

    def test_custom_separator(self, toy_db, tmp_path):
        path = save_csv(toy_db, tmp_path / "corpus.csv", separator=";")
        loaded = load_csv(path, separator=";")
        assert loaded.get(0).ingredients == toy_db.get(0).ingredients
