"""Unit tests for the SQLite persistence layer."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import SerializationError
from repro.recipedb.io_sqlite import corpus_summary, load_sqlite, save_sqlite


class TestSaveLoad:
    def test_roundtrip_preserves_recipes_and_regions(self, toy_db, tmp_path):
        path = save_sqlite(toy_db, tmp_path / "corpus.sqlite")
        loaded = load_sqlite(path)
        assert len(loaded) == len(toy_db)
        assert loaded.region_names() == toy_db.region_names()
        for recipe_id in toy_db.recipe_ids():
            assert loaded.get(recipe_id) == toy_db.get(recipe_id)
        japanese = [r for r in loaded.regions() if r.name == "Japanese"][0]
        assert japanese.continent == "Asia"

    def test_refuses_to_overwrite(self, toy_db, tmp_path):
        path = save_sqlite(toy_db, tmp_path / "corpus.sqlite")
        with pytest.raises(SerializationError):
            save_sqlite(toy_db, path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_sqlite(tmp_path / "missing.sqlite")

    def test_schema_is_normalised(self, toy_db, tmp_path):
        path = save_sqlite(toy_db, tmp_path / "corpus.sqlite")
        connection = sqlite3.connect(path)
        try:
            tables = {
                name
                for (name,) in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            assert {"regions", "recipes", "entities", "recipe_entities"} <= tables
            # Entity names are deduplicated across recipes.
            (soy_count,) = connection.execute(
                "SELECT COUNT(*) FROM entities WHERE name = 'soy sauce'"
            ).fetchone()
            assert soy_count == 1
            # The link table holds one row per (recipe, entity) pair.
            (links,) = connection.execute("SELECT COUNT(*) FROM recipe_entities").fetchone()
            expected = sum(
                r.n_ingredients + r.n_processes + r.n_utensils for r in toy_db.recipes()
            )
            assert links == expected
        finally:
            connection.close()

    def test_malformed_database_rejected(self, tmp_path):
        path = tmp_path / "broken.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE unrelated (x INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(SerializationError):
            load_sqlite(path)


class TestCorpusSummary:
    def test_summary_matches_database(self, toy_db, tmp_path):
        path = save_sqlite(toy_db, tmp_path / "corpus.sqlite")
        summary = corpus_summary(path)
        assert summary["n_recipes"] == len(toy_db)
        assert summary["recipes_per_region"] == toy_db.region_recipe_counts()
        top_names = {item["name"] for item in summary["top_items"]}
        # The three per-cuisine staples are the most used items in the toy corpus.
        assert {"soy sauce", "olive oil", "butter"} <= top_names

    def test_summary_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            corpus_summary(tmp_path / "missing.sqlite")

    def test_summary_on_generated_corpus(self, mini_corpus, tmp_path):
        path = save_sqlite(mini_corpus, tmp_path / "mini.sqlite")
        summary = corpus_summary(path)
        assert summary["n_recipes"] == len(mini_corpus)
        assert set(summary["recipes_per_region"]) == set(mini_corpus.region_names())
        assert summary["n_entities"] > 100
