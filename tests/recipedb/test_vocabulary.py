"""Unit and property tests for vocabularies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.recipedb.models import EntityKind, Recipe
from repro.recipedb.vocabulary import EntityVocabularies, Vocabulary

names = st.lists(
    st.text(alphabet="abcdefghij ", min_size=1, max_size=12).filter(lambda s: s.strip()),
    min_size=1,
    max_size=30,
)


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("salt") == 0
        assert vocab.add("Salt") == 0  # normalised duplicate
        assert vocab.add("pepper") == 1
        assert len(vocab) == 2

    def test_lookup_roundtrip(self):
        vocab = Vocabulary(["salt", "pepper"])
        assert vocab.name_of(vocab.id_of("pepper")) == "pepper"

    def test_unknown_lookups_raise(self):
        vocab = Vocabulary(["salt"])
        with pytest.raises(ValidationError):
            vocab.id_of("unknown")
        with pytest.raises(ValidationError):
            vocab.name_of(5)

    def test_get_with_default(self):
        vocab = Vocabulary(["salt"])
        assert vocab.get("salt") == 0
        assert vocab.get("unknown") is None
        assert vocab.get("unknown", -1) == -1

    def test_contains_and_iter(self):
        vocab = Vocabulary(["salt", "pepper"])
        assert "SALT" in vocab
        assert "cumin" not in vocab
        assert 42 not in vocab
        assert list(vocab) == ["salt", "pepper"]

    def test_encode_decode(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert vocab.decode(vocab.encode(["c", "a"])) == ["c", "a"]

    def test_to_from_dict_roundtrip(self):
        vocab = Vocabulary(["salt", "pepper", "cumin"])
        assert Vocabulary.from_dict(vocab.to_dict()) == vocab

    def test_from_dict_rejects_sparse_ids(self):
        with pytest.raises(ValidationError):
            Vocabulary.from_dict({"a": 0, "b": 2})

    @given(names)
    def test_ids_are_dense_and_stable(self, values):
        vocab = Vocabulary()
        ids = vocab.add_all(values)
        assert set(vocab.encode(values)) == set(ids)
        assert sorted(set(ids)) == list(range(len(vocab)))

    @given(names)
    def test_roundtrip_property(self, values):
        vocab = Vocabulary(values)
        for name in values:
            normalised = vocab.name_of(vocab.id_of(name))
            assert vocab.id_of(normalised) == vocab.id_of(name)


class TestEntityVocabularies:
    def test_observe_recipe(self):
        vocabularies = EntityVocabularies()
        recipe = Recipe(
            0, "t", "X",
            ingredients=("soy sauce",), processes=("heat",), utensils=("wok",),
        )
        vocabularies.observe(recipe)
        assert "soy sauce" in vocabularies.ingredients
        assert "heat" in vocabularies.processes
        assert "wok" in vocabularies.utensils
        assert vocabularies.sizes() == {
            "ingredients": 1, "processes": 1, "utensils": 1, "combined": 3
        }

    def test_vocabulary_for_each_kind(self):
        vocabularies = EntityVocabularies()
        assert vocabularies.vocabulary_for(EntityKind.INGREDIENT) is vocabularies.ingredients
        assert vocabularies.vocabulary_for(EntityKind.PROCESS) is vocabularies.processes
        assert vocabularies.vocabulary_for(EntityKind.UTENSIL) is vocabularies.utensils

    def test_observe_all(self, toy_recipes):
        vocabularies = EntityVocabularies()
        vocabularies.observe_all(toy_recipes)
        sizes = vocabularies.sizes()
        assert sizes["ingredients"] >= 10
        assert sizes["combined"] >= sizes["ingredients"]
