"""Unit tests for recipe / entity models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.recipedb.models import (
    EntityKind,
    Ingredient,
    Process,
    Recipe,
    Region,
    Utensil,
    normalize_name,
    recipes_to_transactions,
)


class TestNormalizeName:
    def test_lowercases_and_collapses_whitespace(self):
        assert normalize_name("  Soy   Sauce ") == "soy sauce"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            normalize_name("   ")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            normalize_name(42)  # type: ignore[arg-type]

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1))
    def test_idempotent(self, name: str):
        once = normalize_name(name)
        assert normalize_name(once) == once


class TestCatalogueEntries:
    def test_ingredient_kind_and_alias_matching(self):
        ingredient = Ingredient(0, "Soy Sauce", aliases=("shoyu", "SOYA sauce"))
        assert ingredient.kind is EntityKind.INGREDIENT
        assert ingredient.name == "soy sauce"
        assert ingredient.matches("SHOYU")
        assert ingredient.matches("soy sauce")
        assert not ingredient.matches("fish sauce")

    def test_process_and_utensil_kinds(self):
        assert Process(1, "Stir Fry").kind is EntityKind.PROCESS
        assert Utensil(2, "Wok").kind is EntityKind.UTENSIL

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Ingredient(-1, "salt")


class TestRegion:
    def test_name_normalisation_preserves_case(self):
        region = Region("  Indian   Subcontinent ")
        assert region.name == "Indian Subcontinent"
        assert region.continent == "unknown"

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Region("   ")


class TestRecipe:
    def test_entities_sorted_and_deduplicated(self):
        recipe = Recipe(
            0, "Test", "Japanese",
            ingredients=("Soy Sauce", "mirin", "soy sauce"),
            processes=("Heat", "add", "heat"),
            utensils=("Wok",),
        )
        assert recipe.ingredients == ("mirin", "soy sauce")
        assert recipe.processes == ("add", "heat")
        assert recipe.utensils == ("wok",)
        assert recipe.n_ingredients == 2
        assert recipe.n_processes == 2
        assert recipe.n_utensils == 1

    def test_requires_at_least_one_ingredient(self):
        with pytest.raises(ValidationError):
            Recipe(0, "empty", "Japanese", ingredients=())

    def test_items_concatenates_all_kinds(self):
        recipe = Recipe(0, "t", "X", ingredients=("a",), processes=("b",), utensils=("c",))
        assert recipe.items() == frozenset({"a", "b", "c"})
        assert recipe.items([EntityKind.INGREDIENT]) == frozenset({"a"})
        assert recipe.items([EntityKind.PROCESS, EntityKind.UTENSIL]) == frozenset({"b", "c"})

    def test_entities_of_unknown_kind_rejected(self):
        recipe = Recipe(0, "t", "X", ingredients=("a",))
        with pytest.raises(ValidationError):
            recipe.entities_of("not-a-kind")  # type: ignore[arg-type]

    def test_has_utensils_flag(self):
        with_utensils = Recipe(0, "t", "X", ingredients=("a",), utensils=("bowl",))
        without = Recipe(1, "t", "X", ingredients=("a",))
        assert with_utensils.has_utensils
        assert not without.has_utensils

    def test_roundtrip_through_dict(self):
        recipe = Recipe(
            5, "Roundtrip", "Thai",
            ingredients=("fish sauce", "lime juice"),
            processes=("pound",),
            utensils=("mortar and pestle",),
            source="unit-test",
        )
        assert Recipe.from_dict(recipe.to_dict()) == recipe

    def test_from_dict_missing_field(self):
        with pytest.raises(ValidationError):
            Recipe.from_dict({"title": "x", "region": "Y"})

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Recipe(-3, "t", "X", ingredients=("a",))


def test_recipes_to_transactions(toy_recipes):
    transactions = recipes_to_transactions(toy_recipes)
    assert len(transactions) == len(toy_recipes)
    assert all(isinstance(t, frozenset) for t in transactions)
    assert "soy sauce" in transactions[0]
    ingredient_only = recipes_to_transactions(toy_recipes, kinds=[EntityKind.INGREDIENT])
    assert "heat" not in ingredient_only[0]
