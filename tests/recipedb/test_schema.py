"""Unit tests for the recipe schema validation layer."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.recipedb.models import EntityKind, Recipe
from repro.recipedb.schema import RecipeSchema, SchemaLimits, SchemaViolation


def _recipe(**overrides) -> Recipe:
    payload = {
        "recipe_id": 0,
        "title": "test dish",
        "region": "Japanese",
        "ingredients": ("soy sauce",),
        "processes": ("heat",),
        "utensils": ("wok",),
    }
    payload.update(overrides)
    return Recipe(**payload)


class TestSchemaLimits:
    def test_defaults_are_positive(self):
        limits = SchemaLimits()
        assert limits.max_ingredients > 0
        assert limits.max_title_length > 0

    @pytest.mark.parametrize(
        "field", ["max_ingredients", "max_processes", "max_utensils", "max_title_length"]
    )
    def test_non_positive_limits_rejected(self, field):
        with pytest.raises(SchemaError):
            SchemaLimits(**{field: 0})


class TestRecipeSchema:
    def test_valid_recipe_passes(self):
        schema = RecipeSchema(regions={"Japanese"})
        schema.validate(_recipe())
        assert schema.is_valid(_recipe())

    def test_unknown_region_is_violation(self):
        schema = RecipeSchema(regions={"Italian"})
        violations = schema.violations(_recipe())
        assert any(v.field == "region" for v in violations)
        with pytest.raises(SchemaError):
            schema.validate(_recipe())

    def test_empty_region_set_accepts_everything(self):
        schema = RecipeSchema()
        assert schema.is_valid(_recipe(region="Anywhere"))

    def test_size_limit_violation(self):
        schema = RecipeSchema(limits=SchemaLimits(max_ingredients=2))
        recipe = _recipe(ingredients=("a", "b", "c"))
        violations = schema.violations(recipe)
        assert any(v.field == "ingredients" for v in violations)

    def test_title_length_violation(self):
        schema = RecipeSchema(limits=SchemaLimits(max_title_length=5))
        violations = schema.violations(_recipe(title="a very long recipe title"))
        assert any(v.field == "title" for v in violations)

    def test_strict_mode_flags_unknown_entities(self):
        schema = RecipeSchema(
            regions={"Japanese"},
            catalogues={EntityKind.INGREDIENT: {"soy sauce"}},
            strict=True,
        )
        good = _recipe()
        bad = _recipe(recipe_id=1, ingredients=("soy sauce", "unknown thing"))
        assert schema.is_valid(good)
        violations = schema.violations(bad)
        assert any(v.field == "ingredient" for v in violations)

    def test_non_strict_mode_ignores_catalogues(self):
        schema = RecipeSchema(
            regions={"Japanese"},
            catalogues={EntityKind.INGREDIENT: {"soy sauce"}},
            strict=False,
        )
        assert schema.is_valid(_recipe(ingredients=("anything",)))

    def test_register_helpers(self):
        schema = RecipeSchema()
        schema.register_region("Thai")
        schema.register_entity(EntityKind.UTENSIL, "wok")
        assert "Thai" in schema.regions
        assert "wok" in schema.catalogues[EntityKind.UTENSIL]

    def test_violation_str_mentions_recipe(self):
        violation = SchemaViolation(7, "region", "unknown region")
        assert "7" in str(violation)
        assert "region" in str(violation)

    def test_from_mapping(self):
        schema = RecipeSchema.from_mapping(
            {
                "regions": ["Japanese"],
                "ingredients": ["soy sauce"],
                "strict": True,
                "limits": {"max_ingredients": 5},
            }
        )
        assert schema.strict
        assert schema.limits.max_ingredients == 5
        assert schema.is_valid(_recipe())
        assert not schema.is_valid(_recipe(recipe_id=1, ingredients=("mystery",)))
