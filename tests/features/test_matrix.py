"""Unit tests for the labelled feature matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.matrix import FeatureMatrix


@pytest.fixture()
def matrix() -> FeatureMatrix:
    return FeatureMatrix(
        row_labels=("A", "B", "C"),
        column_labels=("p1", "p2", "p3", "p4"),
        values=np.array(
            [
                [1.0, 0.0, 0.5, 2.0],
                [0.0, 1.0, 0.5, 2.0],
                [1.0, 1.0, 0.0, 2.0],
            ]
        ),
    )


class TestConstruction:
    def test_shape_properties(self, matrix):
        assert matrix.shape == (3, 4)
        assert matrix.n_rows == 3
        assert matrix.n_columns == 4

    def test_validation(self):
        with pytest.raises(FeatureError):
            FeatureMatrix(("A",), ("x",), np.zeros((2, 1)))
        with pytest.raises(FeatureError):
            FeatureMatrix(("A", "A"), ("x",), np.zeros((2, 1)))
        with pytest.raises(FeatureError):
            FeatureMatrix(("A",), ("x",), np.array([[np.nan]]))
        with pytest.raises(FeatureError):
            FeatureMatrix(("A",), ("x",), np.zeros(3))


class TestAccess:
    def test_row_and_column(self, matrix):
        np.testing.assert_allclose(matrix.row("B"), [0.0, 1.0, 0.5, 2.0])
        np.testing.assert_allclose(matrix.column("p1"), [1.0, 0.0, 1.0])
        with pytest.raises(FeatureError):
            matrix.row("Z")
        with pytest.raises(FeatureError):
            matrix.column("zz")

    def test_row_returns_copy(self, matrix):
        row = matrix.row("A")
        row[0] = 99
        assert matrix.values[0, 0] == 1.0


class TestTransformations:
    def test_binarized(self, matrix):
        binary = matrix.binarized()
        assert set(np.unique(binary.values)) <= {0.0, 1.0}
        assert binary.values[0, 2] == 1.0
        assert binary.values[2, 2] == 0.0

    def test_standardized_zero_mean(self, matrix):
        standard = matrix.standardized()
        np.testing.assert_allclose(standard.values.mean(axis=0), 0.0, atol=1e-12)
        # Constant column stays at zero after centring.
        np.testing.assert_allclose(standard.column("p4"), 0.0, atol=1e-12)

    def test_select_rows(self, matrix):
        selected = matrix.select_rows(["C", "A"])
        assert selected.row_labels == ("C", "A")
        np.testing.assert_allclose(selected.row("C"), matrix.row("C"))

    def test_drop_constant_columns(self, matrix):
        reduced = matrix.drop_constant_columns()
        assert "p4" not in reduced.column_labels
        assert reduced.n_columns == 3

    def test_drop_constant_columns_all_constant(self):
        constant = FeatureMatrix(("A", "B"), ("x", "y"), np.ones((2, 2)))
        assert constant.drop_constant_columns().shape == (2, 2)

    def test_to_dict(self, matrix):
        payload = matrix.to_dict()
        assert payload["row_labels"] == ["A", "B", "C"]
        assert len(payload["values"]) == 3
