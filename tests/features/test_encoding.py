"""Unit and property tests for label encoding and string patterns."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import FeatureError
from repro.features.encoding import LabelEncoder, encode_cuisine_patterns, string_patterns
from repro.mining.fpgrowth import fpgrowth


class TestLabelEncoder:
    def test_fit_transform_roundtrip(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(["b", "a", "b", "c"])
        assert encoder.classes == ("a", "b", "c")
        assert codes == [1, 0, 1, 2]
        assert encoder.inverse_transform(codes) == ["b", "a", "b", "c"]

    def test_unfitted_rejected(self):
        with pytest.raises(FeatureError):
            LabelEncoder().transform(["a"])
        with pytest.raises(FeatureError):
            LabelEncoder().inverse_transform([0])

    def test_unknown_value_rejected(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(FeatureError):
            encoder.transform(["z"])

    def test_out_of_range_code_rejected(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(FeatureError):
            encoder.inverse_transform([5])

    def test_empty_fit_rejected(self):
        with pytest.raises(FeatureError):
            LabelEncoder().fit([])

    def test_contains_len_iter(self):
        encoder = LabelEncoder().fit(["x", "y"])
        assert "x" in encoder
        assert "q" not in encoder
        assert len(encoder) == 2
        assert list(encoder) == ["x", "y"]

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5), min_size=1, max_size=40))
    def test_property_roundtrip(self, values):
        encoder = LabelEncoder().fit(values)
        assert encoder.inverse_transform(encoder.transform(values)) == [str(v) for v in values]

    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=5), min_size=1, max_size=30))
    def test_property_codes_are_dense_and_sorted(self, values):
        encoder = LabelEncoder().fit(values)
        codes = encoder.transform(sorted(values))
        assert codes == list(range(len(values)))


class TestStringPatterns:
    def test_sorted_join(self):
        result = fpgrowth([{"b", "a"}, {"a", "b"}, {"a"}], min_support=0.5, max_length=None)
        strings = string_patterns(result)
        assert "a + b" in strings
        assert all("b + a" != s for s in strings)

    def test_custom_separator(self):
        result = fpgrowth([{"x", "y"}] * 3, min_support=0.5, max_length=None)
        assert "x|y" in string_patterns(result, separator="|")


class TestEncodeCuisinePatterns:
    def test_union_is_encoded(self, toy_db):
        results = {
            region: fpgrowth(toy_db.transactions_for_region(region), min_support=0.6)
            for region in toy_db.region_names()
        }
        encoder, encoded = encode_cuisine_patterns(results)
        assert set(encoded) == set(results)
        # Every code decodes to a pattern string of the right cuisine.
        for cuisine, codes in encoded.items():
            strings = set(results[cuisine].string_patterns())
            decoded = set(encoder.inverse_transform(codes))
            assert decoded == strings

    def test_empty_inputs_rejected(self):
        with pytest.raises(FeatureError):
            encode_cuisine_patterns({})

    def test_no_patterns_anywhere_rejected(self):
        empty = fpgrowth([{"a"}, {"b"}, {"c"}, {"d"}, {"e"}], min_support=0.99)
        with pytest.raises(FeatureError):
            encode_cuisine_patterns({"X": empty})
