"""Unit tests for feature vectorisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.authenticity.prevalence import prevalence_matrix
from repro.authenticity.relative import relative_prevalence
from repro.features.vectorize import (
    authenticity_feature_matrix,
    coordinate_feature_matrix,
    pattern_membership_matrix,
)
from repro.mining.fpgrowth import fpgrowth


@pytest.fixture()
def mining_results(toy_db):
    return {
        region: fpgrowth(toy_db.transactions_for_region(region), min_support=0.6)
        for region in toy_db.region_names()
    }


class TestPatternMembershipMatrix:
    def test_binary_membership(self, mining_results):
        matrix, encoder = pattern_membership_matrix(mining_results, weighting="binary")
        assert matrix.row_labels == ("Italian", "Japanese", "UK")
        assert matrix.n_columns == len(encoder)
        assert set(np.unique(matrix.values)) <= {0.0, 1.0}
        # The Japanese row must flag exactly its own patterns.
        japanese_row = matrix.row("Japanese")
        expected = set(mining_results["Japanese"].string_patterns())
        flagged = {
            matrix.column_labels[i] for i, value in enumerate(japanese_row) if value == 1.0
        }
        assert flagged == expected

    def test_support_weighting(self, mining_results):
        matrix, _encoder = pattern_membership_matrix(mining_results, weighting="support")
        japanese = mining_results["Japanese"]
        for pattern in japanese:
            column = pattern.as_string()
            assert matrix.values[
                matrix.row_labels.index("Japanese"),
                matrix.column_labels.index(column),
            ] == pytest.approx(pattern.support)

    def test_row_sums_equal_pattern_counts(self, mining_results):
        matrix, _ = pattern_membership_matrix(mining_results, weighting="binary")
        for region, result in mining_results.items():
            assert matrix.row(region).sum() == pytest.approx(len(result))

    def test_unknown_weighting_rejected(self, mining_results):
        with pytest.raises(FeatureError):
            pattern_membership_matrix(mining_results, weighting="tfidf")


class TestAuthenticityFeatureMatrix:
    def test_wraps_authenticity(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        matrix = authenticity_feature_matrix(authenticity)
        assert matrix.row_labels == authenticity.cuisines
        assert matrix.column_labels == authenticity.items
        np.testing.assert_allclose(matrix.values, authenticity.values)

    def test_is_a_copy(self, toy_db):
        authenticity = relative_prevalence(prevalence_matrix(toy_db))
        matrix = authenticity_feature_matrix(authenticity)
        matrix.values[0, 0] = 42.0
        assert authenticity.values[0, 0] != 42.0


class TestCoordinateFeatureMatrix:
    def test_basic(self):
        matrix = coordinate_feature_matrix({"B": (1.0, 2.0), "A": (3.0, 4.0)})
        assert matrix.row_labels == ("A", "B")
        assert matrix.column_labels == ("latitude", "longitude")
        np.testing.assert_allclose(matrix.row("A"), [3.0, 4.0])

    def test_validation(self):
        with pytest.raises(FeatureError):
            coordinate_feature_matrix({})
        with pytest.raises(FeatureError):
            coordinate_feature_matrix({"A": (1.0, 2.0, 3.0)})

    def test_custom_columns(self):
        matrix = coordinate_feature_matrix(
            {"A": (1.0, 2.0, 3.0)}, column_labels=("x", "y", "z")
        )
        assert matrix.column_labels == ("x", "y", "z")
