"""Unit tests for the dendrogram tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.linkage import linkage
from repro.distances.pdist import pairwise_distances
from repro.features.matrix import FeatureMatrix


@pytest.fixture()
def two_cluster_dendrogram() -> Dendrogram:
    points = np.array(
        [[0.0, 0.0], [0.2, 0.0], [0.0, 0.2], [10.0, 10.0], [10.2, 10.0], [10.0, 10.2]]
    )
    labels = ("a1", "a2", "a3", "b1", "b2", "b3")
    features = FeatureMatrix(labels, ("x", "y"), points)
    return Dendrogram(linkage(pairwise_distances(features), method="average"))


class TestStructure:
    def test_leaf_order_is_permutation(self, two_cluster_dendrogram):
        order = two_cluster_dendrogram.leaf_order()
        assert sorted(order) == ["a1", "a2", "a3", "b1", "b2", "b3"]

    def test_root_covers_all_leaves(self, two_cluster_dendrogram):
        assert two_cluster_dendrogram.root.size() == 6
        assert two_cluster_dendrogram.root.depth() >= 2

    def test_merge_heights_and_max(self, two_cluster_dendrogram):
        heights = two_cluster_dendrogram.merge_heights()
        assert len(heights) == 5
        assert two_cluster_dendrogram.max_height() == pytest.approx(max(heights))

    def test_internal_nodes_count(self, two_cluster_dendrogram):
        assert len(list(two_cluster_dendrogram.internal_nodes())) == 5

    def test_node_lookup(self, two_cluster_dendrogram):
        assert two_cluster_dendrogram.node(0).is_leaf
        with pytest.raises(ClusteringError):
            two_cluster_dendrogram.node(999)

    def test_merge_table(self, two_cluster_dendrogram):
        table = two_cluster_dendrogram.merge_table()
        assert len(table) == 5
        assert table[-1]["size"] == 6
        assert set(table[-1]["left"] + table[-1]["right"]) == set(
            two_cluster_dendrogram.labels
        )


class TestCutting:
    def test_cut_into_two_recovers_ground_truth(self, two_cluster_dendrogram):
        assignment = two_cluster_dendrogram.cut_into(2)
        groups = {}
        for label, cluster in assignment.items():
            groups.setdefault(cluster, set()).add(label)
        assert {frozenset(g) for g in groups.values()} == {
            frozenset({"a1", "a2", "a3"}),
            frozenset({"b1", "b2", "b3"}),
        }

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_cut_into_k_produces_k_clusters(self, two_cluster_dendrogram, k):
        assignment = two_cluster_dendrogram.cut_into(k)
        assert len(set(assignment.values())) == k
        assert set(assignment) == set(two_cluster_dendrogram.labels)

    def test_cut_into_bounds(self, two_cluster_dendrogram):
        with pytest.raises(ClusteringError):
            two_cluster_dendrogram.cut_into(0)
        with pytest.raises(ClusteringError):
            two_cluster_dendrogram.cut_into(7)

    def test_cut_at_height_zero_gives_singletons(self, two_cluster_dendrogram):
        assignment = two_cluster_dendrogram.cut_at_height(0.0)
        assert len(set(assignment.values())) == 6

    def test_cut_at_max_height_gives_one_cluster(self, two_cluster_dendrogram):
        height = two_cluster_dendrogram.max_height()
        assignment = two_cluster_dendrogram.cut_at_height(height)
        assert len(set(assignment.values())) == 1

    def test_cut_at_negative_height_rejected(self, two_cluster_dendrogram):
        with pytest.raises(ClusteringError):
            two_cluster_dendrogram.cut_at_height(-1.0)


class TestCophenetic:
    def test_within_cluster_distances_smaller(self, two_cluster_dendrogram):
        cophenetic = two_cluster_dendrogram.cophenetic_distances()
        within = cophenetic.distance("a1", "a2")
        across = cophenetic.distance("a1", "b1")
        assert within < across
        # Every cross-cluster pair has the same cophenetic distance (the root height).
        assert across == pytest.approx(two_cluster_dendrogram.max_height())

    def test_labels_preserved_in_original_order(self, two_cluster_dendrogram):
        cophenetic = two_cluster_dendrogram.cophenetic_distances()
        assert cophenetic.labels == two_cluster_dendrogram.labels


class TestExports:
    def test_newick_contains_all_labels_and_is_terminated(self, two_cluster_dendrogram):
        newick = two_cluster_dendrogram.to_newick()
        assert newick.endswith(";")
        for label in two_cluster_dendrogram.labels:
            assert label in newick

    def test_to_dict_roundtrips_structure(self, two_cluster_dendrogram):
        payload = two_cluster_dendrogram.to_dict()
        assert payload["labels"] == list(two_cluster_dendrogram.labels)
        assert payload["method"] == "average"

        def count_leaves(node):
            if "left" not in node:
                return 1
            return count_leaves(node["left"]) + count_leaves(node["right"])

        assert count_leaves(payload["root"]) == 6
