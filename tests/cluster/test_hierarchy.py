"""Unit tests for the HAC front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.hierarchy import (
    HierarchicalClustering,
    cluster_distances,
    cluster_features,
)
from repro.distances.pdist import pairwise_distances
from repro.features.matrix import FeatureMatrix


@pytest.fixture()
def features() -> FeatureMatrix:
    rng = np.random.default_rng(3)
    cluster_a = rng.normal(loc=0.0, scale=0.1, size=(4, 3))
    cluster_b = rng.normal(loc=5.0, scale=0.1, size=(4, 3))
    values = np.vstack([cluster_a, cluster_b])
    labels = tuple(f"a{i}" for i in range(4)) + tuple(f"b{i}" for i in range(4))
    return FeatureMatrix(labels, ("x", "y", "z"), values)


class TestHierarchicalClustering:
    def test_fit_features_produces_complete_run(self, features):
        run = cluster_features(features, metric="euclidean", method="average")
        assert run.labels == features.row_labels
        assert run.metric == "euclidean"
        assert run.method == "average"
        assert run.features is features
        assert len(run.linkage_matrix) == 7
        assert sorted(run.dendrogram.leaf_order()) == sorted(features.row_labels)

    def test_flat_clusters_recover_structure(self, features):
        run = cluster_features(features)
        clusters = run.flat_clusters(2)
        a_ids = {clusters[f"a{i}"] for i in range(4)}
        b_ids = {clusters[f"b{i}"] for i in range(4)}
        assert len(a_ids) == 1
        assert len(b_ids) == 1
        assert a_ids != b_ids

    def test_fit_distances_directly(self, features):
        distances = pairwise_distances(features, metric="cosine")
        run = cluster_distances(distances, method="complete")
        assert run.metric == "cosine"
        assert run.method == "complete"
        assert run.features is None

    def test_summary(self, features):
        summary = cluster_features(features).summary()
        assert summary["n_observations"] == 8
        assert summary["metric"] == "euclidean"
        assert len(summary["leaf_order"]) == 8

    def test_invalid_method_rejected_early(self):
        with pytest.raises(ClusteringError):
            HierarchicalClustering(method="kmeans")

    def test_single_row_rejected(self):
        single = FeatureMatrix(("A",), ("x",), np.array([[1.0]]))
        with pytest.raises(ClusteringError):
            cluster_features(single)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "jaccard"])
    @pytest.mark.parametrize("method", ["single", "complete", "average", "ward"])
    def test_all_metric_method_combinations(self, features, metric, method):
        source = features.binarized() if metric == "jaccard" else features
        run = cluster_features(source, metric=metric, method=method)
        assert len(run.dendrogram.leaf_order()) == 8
        assert run.dendrogram.max_height() >= 0.0
