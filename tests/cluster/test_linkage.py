"""Unit tests for agglomerative linkage, cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import pdist as scipy_pdist, squareform

from repro.errors import ClusteringError
from repro.cluster.linkage import LINKAGE_METHODS, LinkageMatrix, linkage
from repro.distances.pdist import CondensedDistanceMatrix, pairwise_distances
from repro.features.matrix import FeatureMatrix


def _condensed_from_points(points: np.ndarray) -> CondensedDistanceMatrix:
    labels = tuple(f"p{i}" for i in range(points.shape[0]))
    features = FeatureMatrix(labels, tuple(f"d{j}" for j in range(points.shape[1])), points)
    return pairwise_distances(features, metric="euclidean")


class TestLinkageBasics:
    def test_two_points(self):
        condensed = CondensedDistanceMatrix(("A", "B"), np.array([2.5]))
        result = linkage(condensed, method="single")
        assert len(result) == 1
        left, right, height, size = result.merges[0]
        assert {int(left), int(right)} == {0, 1}
        assert height == pytest.approx(2.5)
        assert size == 2

    def test_unknown_method_rejected(self):
        condensed = CondensedDistanceMatrix(("A", "B"), np.array([1.0]))
        with pytest.raises(ClusteringError):
            linkage(condensed, method="centroid")

    def test_single_observation_rejected(self):
        condensed = CondensedDistanceMatrix(("A",), np.array([]))
        with pytest.raises(ClusteringError):
            linkage(condensed)

    def test_linkage_matrix_shape_validation(self):
        with pytest.raises(ClusteringError):
            LinkageMatrix(np.zeros((3, 4)), ("A", "B"), "average", "euclidean")

    def test_monotone_heights(self):
        rng = np.random.default_rng(0)
        condensed = _condensed_from_points(rng.normal(size=(12, 3)))
        for method in LINKAGE_METHODS:
            result = linkage(condensed, method=method)
            heights = result.heights
            assert np.all(np.diff(heights) >= -1e-9), method

    def test_final_cluster_contains_everything(self):
        rng = np.random.default_rng(1)
        condensed = _condensed_from_points(rng.normal(size=(8, 2)))
        result = linkage(condensed, method="average")
        assert result.merges[-1, 3] == 8

    def test_obvious_two_cluster_structure(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [10.0, 10.0], [10.1, 10.0], [10.0, 10.1]]
        )
        condensed = _condensed_from_points(points)
        result = linkage(condensed, method="average")
        # The final merge height must be much larger than all earlier ones.
        heights = result.heights
        assert heights[-1] > 10 * heights[-2]


class TestAgainstScipy:
    @pytest.mark.parametrize("method", ["single", "complete", "average", "weighted", "ward"])
    def test_heights_match_scipy(self, method):
        rng = np.random.default_rng(42)
        points = rng.normal(size=(15, 4))
        condensed = _condensed_from_points(points)
        ours = linkage(condensed, method=method)
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        # Merge order can differ under ties, but the sorted height profile and
        # the cophenetic distances must match.
        np.testing.assert_allclose(
            np.sort(ours.heights), np.sort(reference[:, 2]), rtol=1e-8, atol=1e-10
        )

    @pytest.mark.parametrize("method", ["single", "complete", "average", "ward"])
    def test_cophenetic_matrix_matches_scipy(self, method):
        from repro.cluster.dendrogram import Dendrogram

        rng = np.random.default_rng(7)
        points = rng.normal(size=(12, 3))
        condensed = _condensed_from_points(points)
        ours = Dendrogram(linkage(condensed, method=method)).cophenetic_distances()
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        reference_cophenetic = scipy_hierarchy.cophenet(reference)
        np.testing.assert_allclose(ours.distances, reference_cophenetic, rtol=1e-8, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(4, 12), st.sampled_from(["single", "complete", "average"]))
    def test_property_heights_match_scipy(self, seed, n_points, method):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n_points, 3))
        condensed = _condensed_from_points(points)
        ours = linkage(condensed, method=method)
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        np.testing.assert_allclose(
            np.sort(ours.heights), np.sort(reference[:, 2]), rtol=1e-8, atol=1e-10
        )
