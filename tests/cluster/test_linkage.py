"""Unit tests for agglomerative linkage, cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import pdist as scipy_pdist

from repro.errors import ClusteringError
from repro.cluster.linkage import LINKAGE_METHODS, LinkageMatrix, linkage, linkage_naive
from repro.distances.pdist import CondensedDistanceMatrix, pairwise_distances
from repro.features.matrix import FeatureMatrix


def _condensed_from_points(points: np.ndarray) -> CondensedDistanceMatrix:
    labels = tuple(f"p{i}" for i in range(points.shape[0]))
    features = FeatureMatrix(labels, tuple(f"d{j}" for j in range(points.shape[1])), points)
    return pairwise_distances(features, metric="euclidean")


class TestLinkageBasics:
    def test_two_points(self):
        condensed = CondensedDistanceMatrix(("A", "B"), np.array([2.5]))
        result = linkage(condensed, method="single")
        assert len(result) == 1
        left, right, height, size = result.merges[0]
        assert {int(left), int(right)} == {0, 1}
        assert height == pytest.approx(2.5)
        assert size == 2

    def test_unknown_method_rejected(self):
        condensed = CondensedDistanceMatrix(("A", "B"), np.array([1.0]))
        with pytest.raises(ClusteringError):
            linkage(condensed, method="centroid")

    def test_single_observation_rejected(self):
        condensed = CondensedDistanceMatrix(("A",), np.array([]))
        with pytest.raises(ClusteringError):
            linkage(condensed)

    def test_linkage_matrix_shape_validation(self):
        with pytest.raises(ClusteringError):
            LinkageMatrix(np.zeros((3, 4)), ("A", "B"), "average", "euclidean")

    def test_monotone_heights(self):
        rng = np.random.default_rng(0)
        condensed = _condensed_from_points(rng.normal(size=(12, 3)))
        for method in LINKAGE_METHODS:
            result = linkage(condensed, method=method)
            heights = result.heights
            assert np.all(np.diff(heights) >= -1e-9), method

    def test_final_cluster_contains_everything(self):
        rng = np.random.default_rng(1)
        condensed = _condensed_from_points(rng.normal(size=(8, 2)))
        result = linkage(condensed, method="average")
        assert result.merges[-1, 3] == 8

    def test_obvious_two_cluster_structure(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [10.0, 10.0], [10.1, 10.0], [10.0, 10.1]]
        )
        condensed = _condensed_from_points(points)
        result = linkage(condensed, method="average")
        # The final merge height must be much larger than all earlier ones.
        heights = result.heights
        assert heights[-1] > 10 * heights[-2]


class TestAgainstScipy:
    @pytest.mark.parametrize("method", ["single", "complete", "average", "weighted", "ward"])
    def test_heights_match_scipy(self, method):
        rng = np.random.default_rng(42)
        points = rng.normal(size=(15, 4))
        condensed = _condensed_from_points(points)
        ours = linkage(condensed, method=method)
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        # Merge order can differ under ties, but the sorted height profile and
        # the cophenetic distances must match.
        np.testing.assert_allclose(
            np.sort(ours.heights), np.sort(reference[:, 2]), rtol=1e-8, atol=1e-10
        )

    @pytest.mark.parametrize("method", ["single", "complete", "average", "ward"])
    def test_cophenetic_matrix_matches_scipy(self, method):
        from repro.cluster.dendrogram import Dendrogram

        rng = np.random.default_rng(7)
        points = rng.normal(size=(12, 3))
        condensed = _condensed_from_points(points)
        ours = Dendrogram(linkage(condensed, method=method)).cophenetic_distances()
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        reference_cophenetic = scipy_hierarchy.cophenet(reference)
        np.testing.assert_allclose(ours.distances, reference_cophenetic, rtol=1e-8, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(4, 12), st.sampled_from(["single", "complete", "average"]))
    def test_property_heights_match_scipy(self, seed, n_points, method):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n_points, 3))
        condensed = _condensed_from_points(points)
        ours = linkage(condensed, method=method)
        reference = scipy_hierarchy.linkage(scipy_pdist(points), method=method)
        np.testing.assert_allclose(
            np.sort(ours.heights), np.sort(reference[:, 2]), rtol=1e-8, atol=1e-10
        )


class TestChainMatchesNaive:
    """The O(n²) chain implementation must be bit-identical to the greedy scan."""

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_random_points_bit_identical(self, method):
        rng = np.random.default_rng(99)
        for n in (2, 3, 5, 9, 17, 33):
            condensed = _condensed_from_points(rng.normal(size=(n, 3)))
            fast = linkage(condensed, method=method)
            reference = linkage_naive(condensed, method=method)
            assert np.array_equal(fast.merges, reference.merges), (method, n)
            assert fast == reference

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_tied_distances_bit_identical(self, method):
        """Exact ties (duplicate points, grids) keep the historical tie-breaks."""
        cases = [
            np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0], [5.0, 5.0], [9.0, 0.0]]),
            np.array([[float(i), float(j)] for i in range(3) for j in range(3)]),
            np.array([[float(i), float(j)] for i in range(4) for j in range(4)]),
            np.zeros((6, 2)),
            np.array([[float(i), 0.0] for i in range(8)]),
        ]
        for points in cases:
            condensed = _condensed_from_points(points)
            fast = linkage(condensed, method=method)
            reference = linkage_naive(condensed, method=method)
            assert np.array_equal(fast.merges, reference.merges), (
                method,
                points.shape,
            )

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_binary_features_bit_identical(self, method):
        """Binary feature matrices (the pipeline's real inputs) tie heavily."""
        rng = np.random.default_rng(3)
        values = (rng.random(size=(18, 24)) < 0.25).astype(float)
        features = FeatureMatrix(
            tuple(f"r{i}" for i in range(18)),
            tuple(f"c{j}" for j in range(24)),
            values,
        )
        for metric in ("euclidean", "cosine", "jaccard"):
            condensed = pairwise_distances(features, metric=metric)
            fast = linkage(condensed, method=method)
            reference = linkage_naive(condensed, method=method)
            assert np.array_equal(fast.merges, reference.merges), (method, metric)

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_near_tie_band_bit_identical(self, method):
        """Distinct distances within the naive scan's 1e-15 tie band (e.g.
        near-duplicate points) must keep its earliest-pair resolution."""
        condensed = CondensedDistanceMatrix(
            ("a", "b", "c"), np.array([1.0 + 2e-16, 2.700000001, 1.0])
        )
        assert np.array_equal(
            linkage(condensed, method=method).merges,
            linkage_naive(condensed, method=method).merges,
        )

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_quantized_distinct_distances_bit_identical(self, method):
        """Distinct lattice distances can make *derived* heights collide
        exactly mid-run; these inputs must route to the exact greedy path."""
        # A condensed vector that historically produced a mid-run tie at
        # height 5.25 under average/weighted linkage.
        distances = np.array(
            [2.75, 0.75, 7.75, 13.75, 6.0, 9.25, 3.25, 4.0,
             3.0, 3.5, 9.75, 10.5, 5.25, 10.25, 6.5]
        )
        condensed = CondensedDistanceMatrix(
            tuple(f"p{i}" for i in range(6)), distances
        )
        assert np.array_equal(
            linkage(condensed, method=method).merges,
            linkage_naive(condensed, method=method).merges,
        )
        rng = np.random.default_rng(8)
        for _ in range(20):
            n = int(rng.integers(3, 10))
            values = rng.choice(
                np.arange(1, 80), size=n * (n - 1) // 2, replace=False
            ) * 0.25
            condensed = CondensedDistanceMatrix(
                tuple(f"p{i}" for i in range(n)), values.astype(float)
            )
            assert np.array_equal(
                linkage(condensed, method=method).merges,
                linkage_naive(condensed, method=method).merges,
            )

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(2, 14),
        st.sampled_from(LINKAGE_METHODS),
    )
    def test_property_bit_identical(self, seed, n_points, method):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n_points, 3))
        condensed = _condensed_from_points(points)
        assert np.array_equal(
            linkage(condensed, method=method).merges,
            linkage_naive(condensed, method=method).merges,
        )


class TestFastPrecision:
    """The float32 tiled chain: valid trees, near-exact heights, same API."""

    def test_invalid_precision_rejected(self):
        condensed = CondensedDistanceMatrix(("A", "B"), np.array([2.5]))
        with pytest.raises(ClusteringError, match="precision"):
            linkage(condensed, precision="float16")

    @staticmethod
    def _assert_valid_scipy_format(merges: np.ndarray, n: int) -> None:
        """Structural invariants of a scipy linkage matrix."""
        live = set(range(n))
        sizes = {i: 1 for i in range(n)}
        for step, (left, right, height, size) in enumerate(merges):
            left, right = int(left), int(right)
            assert left < right
            assert left in live and right in live  # each cluster merged once
            live.remove(left)
            live.remove(right)
            assert int(size) == sizes[left] + sizes[right]
            sizes[n + step] = int(size)
            live.add(n + step)
        assert live == {2 * n - 2}
        heights = merges[:, 2]
        assert np.all(np.diff(heights) >= -1e-12)  # monotone merge order

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_fast_mode_matches_exact_heights(self, method):
        rng = np.random.default_rng(42)
        for n in (2, 3, 17, 60):
            condensed = _condensed_from_points(rng.normal(size=(n, 3)))
            exact = linkage(condensed, method=method)
            fast = linkage(condensed, method=method, precision="fast")
            self._assert_valid_scipy_format(fast.merges, n)
            # Heights agree to float32 resolution; the trees themselves may
            # differ only where distances collide below that resolution.
            np.testing.assert_allclose(
                np.sort(fast.merges[:, 2]),
                np.sort(exact.merges[:, 2]),
                rtol=1e-5,
                atol=1e-6,
            )

    @pytest.mark.parametrize("method", LINKAGE_METHODS)
    def test_fast_mode_compaction_path(self, method):
        """n above the compaction floor exercises the gather + chain reset."""
        rng = np.random.default_rng(7)
        n = 300
        condensed = _condensed_from_points(rng.normal(size=(n, 4)))
        fast = linkage(condensed, method=method, precision="fast")
        exact = linkage(condensed, method=method)
        self._assert_valid_scipy_format(fast.merges, n)
        np.testing.assert_allclose(
            np.sort(fast.merges[:, 2]),
            np.sort(exact.merges[:, 2]),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_fast_mode_well_separated_tree_identical(self):
        """With distances far apart at float32 scale the trees coincide."""
        rng = np.random.default_rng(3)
        centers = np.array([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0], [40.0, 40.0]])
        points = np.concatenate(
            [center + rng.normal(scale=0.5, size=(6, 2)) for center in centers]
        )
        condensed = _condensed_from_points(points)
        exact = linkage(condensed, method="average")
        fast = linkage(condensed, method="average", precision="fast")
        assert np.array_equal(fast.merges[:, :2], exact.merges[:, :2])
        assert np.array_equal(fast.merges[:, 3], exact.merges[:, 3])
        np.testing.assert_allclose(
            fast.merges[:, 2], exact.merges[:, 2], rtol=1e-6
        )

    def test_exact_default_unchanged(self):
        """precision defaults to the exact, naive-bit-identical path."""
        rng = np.random.default_rng(11)
        condensed = _condensed_from_points(rng.normal(size=(20, 3)))
        default = linkage(condensed, method="average")
        explicit = linkage(condensed, method="average", precision="exact")
        reference = linkage_naive(condensed, method="average")
        assert np.array_equal(default.merges, explicit.merges)
        assert np.array_equal(default.merges, reference.merges)
