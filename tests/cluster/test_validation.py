"""Unit tests for cluster / dendrogram validation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import pdist as scipy_pdist

from repro.errors import ClusteringError
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.hierarchy import cluster_features
from repro.cluster.linkage import linkage
from repro.cluster.validation import (
    adjusted_rand_index,
    bakers_gamma,
    cophenetic_correlation,
    fowlkes_mallows,
    pearson_correlation,
    silhouette_score,
    spearman_correlation,
    within_cluster_sum_of_squares,
)
from repro.distances.pdist import pairwise_distances
from repro.features.matrix import FeatureMatrix


def _blobs(seed: int = 0) -> FeatureMatrix:
    rng = np.random.default_rng(seed)
    points = np.vstack(
        [
            rng.normal(loc=0.0, scale=0.2, size=(5, 2)),
            rng.normal(loc=6.0, scale=0.2, size=(5, 2)),
        ]
    )
    labels = tuple(f"a{i}" for i in range(5)) + tuple(f"b{i}" for i in range(5))
    return FeatureMatrix(labels, ("x", "y"), points)


class TestCorrelations:
    def test_pearson_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=30)
        y = 2 * x + rng.normal(scale=0.1, size=30)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_spearman_matches_scipy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=25)
        y = rng.normal(size=25)
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-10)

    def test_spearman_handles_ties(self):
        x = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0]
        y = [2.0, 2.0, 1.0, 5.0, 5.0, 6.0]
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-10)

    def test_degenerate_inputs(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0
        with pytest.raises(ClusteringError):
            pearson_correlation([1.0], [2.0])
        with pytest.raises(ClusteringError):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


class TestCopheneticCorrelation:
    def test_matches_scipy(self):
        features = _blobs()
        distances = pairwise_distances(features)
        dendrogram = Dendrogram(linkage(distances, method="average"))
        ours = cophenetic_correlation(dendrogram, distances)
        reference_linkage = scipy_hierarchy.linkage(
            scipy_pdist(features.values), method="average"
        )
        reference, _ = scipy_hierarchy.cophenet(reference_linkage, scipy_pdist(features.values))
        assert ours == pytest.approx(reference, abs=1e-10)
        assert ours > 0.8  # well-separated blobs preserve distances well

    def test_label_mismatch_rejected(self):
        features = _blobs()
        distances = pairwise_distances(features)
        dendrogram = Dendrogram(linkage(distances))
        other = pairwise_distances(features.select_rows(list(features.row_labels[::-1])))
        with pytest.raises(ClusteringError):
            cophenetic_correlation(dendrogram, other)


class TestBakersGamma:
    def test_identical_trees_score_near_one(self):
        features = _blobs()
        run = cluster_features(features)
        assert bakers_gamma(run.dendrogram, run.dendrogram) == pytest.approx(1.0, abs=1e-9)

    def test_similar_trees_score_higher_than_shuffled(self):
        features = _blobs()
        euclidean_run = cluster_features(features, metric="euclidean")
        cosine_run = cluster_features(features, metric="cosine")
        # Shuffled labels destroy the structure.
        rng = np.random.default_rng(0)
        shuffled_values = features.values.copy()
        rng.shuffle(shuffled_values)
        shuffled = FeatureMatrix(features.row_labels, features.column_labels, shuffled_values)
        shuffled_run = cluster_features(shuffled)
        related = bakers_gamma(euclidean_run.dendrogram, cosine_run.dendrogram)
        unrelated = bakers_gamma(euclidean_run.dendrogram, shuffled_run.dendrogram)
        assert related > unrelated

    def test_label_set_mismatch_rejected(self):
        features = _blobs()
        run = cluster_features(features)
        smaller = cluster_features(features.select_rows(list(features.row_labels[:4])))
        with pytest.raises(ClusteringError):
            bakers_gamma(run.dendrogram, smaller.dendrogram)


class TestFlatClusteringAgreement:
    def test_perfect_agreement(self):
        first = {"a": 0, "b": 0, "c": 1, "d": 1}
        relabelled = {"a": 5, "b": 5, "c": 9, "d": 9}
        assert fowlkes_mallows(first, relabelled) == pytest.approx(1.0)
        assert adjusted_rand_index(first, relabelled) == pytest.approx(1.0)

    def test_disagreement_scores_lower(self):
        first = {"a": 0, "b": 0, "c": 1, "d": 1}
        second = {"a": 0, "b": 1, "c": 0, "d": 1}
        assert fowlkes_mallows(first, second) < 0.6
        assert adjusted_rand_index(first, second) < 0.1

    def test_ari_near_zero_for_random_labels(self):
        rng = np.random.default_rng(0)
        labels = [f"x{i}" for i in range(40)]
        first = {l: int(rng.integers(3)) for l in labels}
        second = {l: int(rng.integers(3)) for l in labels}
        assert abs(adjusted_rand_index(first, second)) < 0.25

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ClusteringError):
            fowlkes_mallows({"a": 0}, {"b": 0})
        with pytest.raises(ClusteringError):
            adjusted_rand_index({"a": 0}, {"b": 0})
        with pytest.raises(ClusteringError):
            adjusted_rand_index({"a": 0}, {"a": 0})


class TestSilhouetteAndWcss:
    def test_good_clustering_has_high_silhouette(self):
        features = _blobs()
        distances = pairwise_distances(features)
        good = {label: 0 if label.startswith("a") else 1 for label in features.row_labels}
        bad = {label: i % 2 for i, label in enumerate(features.row_labels)}
        assert silhouette_score(distances, good) > 0.8
        assert silhouette_score(distances, good) > silhouette_score(distances, bad)

    def test_singleton_clusters_contribute_zero(self):
        features = _blobs()
        distances = pairwise_distances(features)
        assignment = {label: i for i, label in enumerate(features.row_labels)}
        assert silhouette_score(distances, assignment) == pytest.approx(0.0)

    def test_silhouette_validation(self):
        features = _blobs()
        distances = pairwise_distances(features)
        with pytest.raises(ClusteringError):
            silhouette_score(distances, {"a0": 0})
        with pytest.raises(ClusteringError):
            silhouette_score(distances, {label: 0 for label in features.row_labels})

    def test_wcss_matches_manual_computation(self):
        features = _blobs()
        assignment = {label: 0 if label.startswith("a") else 1 for label in features.row_labels}
        wcss = within_cluster_sum_of_squares(features, assignment)
        manual = 0.0
        for cluster in (0, 1):
            rows = np.stack(
                [features.row(l) for l in features.row_labels if assignment[l] == cluster]
            )
            manual += float(np.sum((rows - rows.mean(axis=0)) ** 2))
        assert wcss == pytest.approx(manual)

    def test_wcss_validation(self):
        features = _blobs()
        with pytest.raises(ClusteringError):
            within_cluster_sum_of_squares(features, {"a0": 0})
