"""Unit tests for Frequent-Itemset-based Hierarchical Clustering (FIHC)."""

from __future__ import annotations

import pytest

from repro.errors import ClusteringError
from repro.cluster.fihc import FIHCClustering
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import MiningResult, Pattern


def _result(patterns: dict[str, float], n: int = 10) -> MiningResult:
    return MiningResult(
        [
            Pattern(frozenset(items.split(" + ")), support, max(1, int(support * n)))
            for items, support in patterns.items()
        ],
        n_transactions=n,
        min_support=0.2,
    )


@pytest.fixture()
def synthetic_results() -> dict[str, MiningResult]:
    """Two Asian-style cuisines sharing patterns, two European-style ones."""
    return {
        "Japan": _result({"soy sauce": 0.5, "soy sauce + rice": 0.3, "rice": 0.4}),
        "Korea": _result({"soy sauce": 0.45, "soy sauce + rice": 0.25, "sesame": 0.3}),
        "Italy": _result({"olive oil": 0.5, "olive oil + tomato": 0.3, "tomato": 0.4}),
        "Spain": _result({"olive oil": 0.45, "olive oil + tomato": 0.28, "garlic": 0.3}),
    }


class TestFIHC:
    def test_requires_two_cuisines(self, synthetic_results):
        with pytest.raises(ClusteringError):
            FIHCClustering().fit({"Japan": synthetic_results["Japan"]})

    def test_invalid_min_cluster_support(self):
        with pytest.raises(ClusteringError):
            FIHCClustering(min_cluster_support=0.0)
        with pytest.raises(ClusteringError):
            FIHCClustering(min_cluster_support=1.5)

    def test_related_cuisines_grouped(self, synthetic_results):
        result = FIHCClustering(min_cluster_support=0.5).fit(synthetic_results)
        assignment = result.cluster_assignment
        assert assignment["Japan"] == assignment["Korea"]
        assert assignment["Italy"] == assignment["Spain"]
        assert assignment["Japan"] != assignment["Italy"]
        assert result.n_clusters == 2

    def test_members_listing(self, synthetic_results):
        result = FIHCClustering(min_cluster_support=0.5).fit(synthetic_results)
        cluster_of_japan = result.cluster_assignment["Japan"]
        assert result.members(cluster_of_japan) == ["Japan", "Korea"]

    def test_merge_tree_reflects_pattern_overlap(self, synthetic_results):
        result = FIHCClustering(min_cluster_support=0.5).fit(synthetic_results)
        cophenetic = result.dendrogram.cophenetic_distances()
        assert cophenetic.distance("Japan", "Korea") < cophenetic.distance("Japan", "Italy")
        assert cophenetic.distance("Italy", "Spain") < cophenetic.distance("Italy", "Korea")

    def test_cluster_patterns_are_global_patterns(self, synthetic_results):
        result = FIHCClustering(min_cluster_support=0.5).fit(synthetic_results)
        for patterns in result.cluster_patterns.values():
            for pattern in patterns:
                count = sum(
                    1
                    for mining in synthetic_results.values()
                    if pattern in mining.string_patterns()
                )
                assert count >= 2

    def test_no_shared_patterns_gives_singletons(self):
        results = {
            "A": _result({"alpha": 0.5}),
            "B": _result({"beta": 0.5}),
            "C": _result({"gamma": 0.5}),
        }
        result = FIHCClustering(min_cluster_support=0.5).fit(results)
        assert result.n_clusters == 3

    def test_on_real_mined_patterns(self, toy_db):
        results = {
            region: fpgrowth(toy_db.transactions_for_region(region), min_support=0.6)
            for region in toy_db.region_names()
        }
        fihc = FIHCClustering().fit(results)
        assert set(fihc.cluster_assignment) == set(toy_db.region_names())
        assert len(fihc.dendrogram.leaf_order()) == 3
