"""Unit tests for K-means and the elbow analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.elbow import ElbowAnalysis, ElbowPoint, detect_elbow, elbow_analysis
from repro.cluster.kmeans import KMeans
from repro.features.matrix import FeatureMatrix


@pytest.fixture()
def blobs() -> FeatureMatrix:
    rng = np.random.default_rng(0)
    centres = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    points = np.vstack([rng.normal(loc=c, scale=0.3, size=(10, 2)) for c in centres])
    labels = tuple(f"p{i}" for i in range(30))
    return FeatureMatrix(labels, ("x", "y"), points)


class TestKMeans:
    def test_recovers_three_blobs(self, blobs):
        result = KMeans(n_clusters=3, seed=1).fit(blobs)
        assert result.n_clusters == 3
        assert result.converged
        sizes = sorted(result.cluster_sizes().values())
        assert sizes == [10, 10, 10]
        assert result.inertia < 30 * 0.3**2 * 10  # well below a loose bound

    def test_assignments_by_label(self, blobs):
        result = KMeans(n_clusters=3, seed=1).fit(blobs)
        assignments = result.assignments()
        assert set(assignments) == set(blobs.row_labels)
        # Points from the same blob share a cluster.
        assert assignments["p0"] == assignments["p5"]
        assert assignments["p0"] != assignments["p15"]

    def test_accepts_raw_array(self, blobs):
        result = KMeans(n_clusters=2, seed=0).fit(blobs.values)
        assert len(result.labels) == 30
        with pytest.raises(ClusteringError):
            result.assignments()

    def test_k_equals_one(self, blobs):
        result = KMeans(n_clusters=1, seed=0).fit(blobs)
        assert set(result.labels) == {0}
        centroid = blobs.values.mean(axis=0)
        expected = float(np.sum((blobs.values - centroid) ** 2))
        assert result.inertia == pytest.approx(expected, rel=1e-6)

    def test_k_equals_n(self, blobs):
        result = KMeans(n_clusters=30, seed=0, n_init=1).fit(blobs)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_for_fixed_seed(self, blobs):
        first = KMeans(n_clusters=3, seed=5).fit(blobs)
        second = KMeans(n_clusters=3, seed=5).fit(blobs)
        assert first.labels == second.labels
        assert first.inertia == pytest.approx(second.inertia)

    def test_validation(self, blobs):
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=0)
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=2, n_init=0)
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=2, max_iterations=0)
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=2, tolerance=-1)
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=31).fit(blobs)
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=2).fit(np.zeros((0, 2)))
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=2).fit(np.zeros(5))

    def test_identical_points(self):
        features = FeatureMatrix(("a", "b", "c"), ("x",), np.ones((3, 1)))
        result = KMeans(n_clusters=2, seed=0).fit(features)
        assert result.inertia == pytest.approx(0.0)


class TestElbow:
    def test_wcss_decreases_with_k(self, blobs):
        analysis = elbow_analysis(blobs, k_min=1, k_max=6, seed=0)
        wcss = analysis.wcss_values()
        assert all(earlier >= later - 1e-9 for earlier, later in zip(wcss, wcss[1:]))
        assert analysis.k_values() == [1, 2, 3, 4, 5, 6]

    def test_clear_elbow_on_blobs(self, blobs):
        analysis = elbow_analysis(blobs, k_min=1, k_max=8, seed=0)
        assert analysis.has_clear_elbow
        assert analysis.elbow_k == 3

    def test_noise_is_less_elbow_like_than_blobs(self, blobs):
        rng = np.random.default_rng(2)
        features = FeatureMatrix(
            tuple(f"p{i}" for i in range(24)),
            tuple(f"d{j}" for j in range(8)),
            rng.uniform(size=(24, 8)),
        )
        noise_analysis = elbow_analysis(features, k_min=1, k_max=8, seed=0)
        blob_analysis = elbow_analysis(blobs, k_min=1, k_max=8, seed=0)
        assert noise_analysis.elbow_strength < blob_analysis.elbow_strength

    def test_k_max_clamped_to_n_rows(self):
        features = FeatureMatrix(("a", "b", "c"), ("x",), np.array([[0.0], [1.0], [5.0]]))
        analysis = elbow_analysis(features, k_min=1, k_max=10, seed=0)
        assert analysis.k_values() == [1, 2, 3]

    def test_to_rows(self, blobs):
        analysis = elbow_analysis(blobs, k_min=1, k_max=4, seed=0)
        rows = analysis.to_rows()
        assert rows[0]["k"] == 1
        assert all(set(row) == {"k", "wcss"} for row in rows)

    def test_validation(self, blobs):
        with pytest.raises(ClusteringError):
            elbow_analysis(blobs, k_min=0)
        with pytest.raises(ClusteringError):
            elbow_analysis(blobs, k_min=5, k_max=2)


class TestDetectElbow:
    def test_sharp_elbow_detected(self):
        k_values = [1, 2, 3, 4, 5, 6]
        wcss = [100.0, 40.0, 10.0, 9.0, 8.5, 8.0]
        elbow_k, strength = detect_elbow(k_values, wcss)
        assert elbow_k == 3
        assert strength > 0.25

    def test_straight_line_has_no_elbow(self):
        k_values = [1, 2, 3, 4, 5]
        wcss = [100.0, 80.0, 60.0, 40.0, 20.0]
        _elbow_k, strength = detect_elbow(k_values, wcss)
        assert strength == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_curves(self):
        assert detect_elbow([1, 2], [5.0, 4.0]) == (None, 0.0)
        assert detect_elbow([1, 2, 3], [5.0, 5.0, 5.0]) == (None, 0.0)

    def test_length_mismatch(self):
        with pytest.raises(ClusteringError):
            detect_elbow([1, 2, 3], [1.0, 2.0])

    def test_analysis_dataclass(self):
        analysis = ElbowAnalysis(
            points=(ElbowPoint(1, 10.0), ElbowPoint(2, 5.0)), elbow_k=None, elbow_strength=0.0
        )
        assert not analysis.has_clear_elbow
